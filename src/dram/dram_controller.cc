#include "dram/dram_controller.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/tracer.hh"

namespace dimmlink {
namespace dram {

namespace {

constexpr std::size_t npos = SchedPolicy::npos;

} // namespace

DramController::DramController(EventQueue &eq, std::string name,
                               const Timing &timing, unsigned num_ranks,
                               unsigned line_bytes,
                               stats::Group &stats_group,
                               const std::string &sched_policy)
    : Clocked(eq, std::move(name), timing.clkMHz),
      spec(timing),
      map(timing, num_ranks, line_bytes),
      ranks(num_ranks),
      banks(num_ranks * timing.banksPerRank()),
      sched(makeSchedPolicy(sched_policy)),
      actWindow(num_ranks * timing.subChannels),
      nextCasAnyGroup(timing.subChannels, 0),
      nextCasSameGroup(num_ranks * timing.effGroups(), 0),
      dataBusFreeAt(timing.subChannels, 0),
      rankBlockedUntil(num_ranks, 0),
      refreshCursor(num_ranks, 0),
      statReads(stats_group.scalar("reads")),
      statWrites(stats_group.scalar("writes")),
      statActs(stats_group.scalar("activates")),
      statPres(stats_group.scalar("precharges")),
      statRowHits(stats_group.scalar("rowHits")),
      statRefreshes(stats_group.scalar("refreshes")),
      statLatency(stats_group.distribution("accessLatencyPs"))
{
    spec.check();
    nextRdCas.assign(ranks * spec.subChannels, 0);
    nextWrCas.assign(ranks * spec.subChannels, 0);
    nextActRank.assign(ranks * spec.subChannels, 0);
    nextActGroup.assign(ranks * spec.effGroups(), 0);
    if (auto *t = eq.tracer(); t && t->enabled(obs::CatDram)) {
        tr = t;
        trk = t->track(stats_group.name(), obs::CatDram);
        nmRd = t->intern("rd");
        nmWr = t->intern("wr");
        nmAct = t->intern("act");
        nmPre = t->intern("pre");
        nmRef = t->intern("refresh");
        nmFaw = t->intern("fawStall");
    }
    for (unsigned r = 0; r < ranks; ++r)
        scheduleRefresh(r);
}

bool
DramController::enqueue(DramRequest req)
{
    QueuedReq qr;
    qr.coord = map.decode(req.local);
    qr.arrival = now();
    qr.req = std::move(req);

    if (qr.req.isWrite) {
        if (writeQ.size() >= writeQCap)
            return false;
        // Write coalescing: a newer write to the same line replaces
        // the older one's data; we retire the older immediately.
        const Addr line_addr = qr.req.local & ~Addr(map.lineBytes() - 1);
        for (auto &other : writeQ) {
            const Addr other_line =
                other.req.local & ~Addr(map.lineBytes() - 1);
            if (other_line == line_addr) {
                if (other.req.done) {
                    auto done = std::move(other.req.done);
                    queue().scheduleIn(0, std::move(done),
                                       EventPriority::Delivery);
                }
                other = std::move(qr);
                return true;
            }
        }
        writeQ.push_back(std::move(qr));
        if (writeQ.size() >= writeHighWatermark)
            drainingWrites = true;
    } else {
        if (readQ.size() >= readQCap)
            return false;
        // Read-after-write forwarding from the write queue.
        const Addr line_addr = qr.req.local & ~Addr(map.lineBytes() - 1);
        for (const auto &w : writeQ) {
            const Addr w_line =
                w.req.local & ~Addr(map.lineBytes() - 1);
            if (w_line == line_addr) {
                auto done = std::move(qr.req.done);
                const Tick lat = spec.cyc(spec.tCL + spec.tBL);
                if (done)
                    queue().scheduleIn(lat, std::move(done),
                                       EventPriority::Delivery);
                statLatency.sample(static_cast<double>(lat));
                ++statReads;
                return true;
            }
        }
        readQ.push_back(std::move(qr));
    }
    scheduleIssue(clockEdge());
    return true;
}

void
DramController::scheduleIssue(Tick when)
{
    if (when < now())
        when = now();
    if (issueScheduled && issueAt <= when)
        return;
    if (issueScheduled)
        queue().deschedule(issueEventId);
    issueScheduled = true;
    issueAt = when;
    issueEventId = queue().schedule(
        when,
        [this] {
            issueScheduled = false;
            tick();
        },
        EventPriority::Control);
}

Tick
DramController::casReadyAt(const QueuedReq &qr, Tick now_t) const
{
    const Bank &bank = bankOf(qr.coord);
    const bool is_wr = qr.req.isWrite;
    const unsigned r = qr.coord.rank;

    Tick ready = bank.readyAt(is_wr ? DramCmd::Wr : DramCmd::Rd);
    ready = std::max(ready, nextCasAnyGroup[laneOf(qr.coord)]);
    // Without bank groups the tCCD L/S split collapses: tCCD_S (via
    // nextCasAnyGroup above) is the only CAS-to-CAS spacing.
    if (spec.hasBankGroups()) {
        const unsigned rg =
            r * spec.effGroups() + qr.coord.bankGroup;
        ready = std::max(ready, nextCasSameGroup[rg]);
    }
    ready = std::max(ready, rankBlockedUntil[r]);
    const unsigned lane = laneOf(qr.coord);
    ready = std::max(ready, is_wr ? nextWrCas[rankLane(r, lane)]
                                  : nextRdCas[rankLane(r, lane)]);

    // The data burst (starting tCL / tCWL after the CAS) must not
    // overlap the previous burst on this bank's data-bus lane.
    const Tick cas_to_data = spec.cyc(is_wr ? spec.tCWL : spec.tCL);
    const Tick bus_free = dataBusFreeAt[lane];
    if (bus_free > cas_to_data)
        ready = std::max(ready, bus_free - cas_to_data);

    return std::max(ready, now_t);
}

Tick
DramController::stepReadyAt(const QueuedReq &qr, Tick now_t,
                            bool &row_hit) const
{
    const Bank &bank = bankOf(qr.coord);
    row_hit = bank.isOpen() && bank.openRow() == qr.coord.row;
    if (row_hit)
        return casReadyAt(qr, now_t);
    if (!bank.isOpen())
        return actReadyAt(qr, now_t);
    return std::max({bank.readyAt(DramCmd::Pre),
                     rankBlockedUntil[qr.coord.rank], now_t});
}

Tick
DramController::actReadyAt(const QueuedReq &qr, Tick now_t) const
{
    const Bank &bank = bankOf(qr.coord);
    const unsigned r = qr.coord.rank;
    const unsigned rl = rankLane(r, laneOf(qr.coord));
    Tick ready = bank.readyAt(DramCmd::Act);
    ready = std::max(ready, rankBlockedUntil[r]);
    ready = std::max(ready, nextActRank[rl]);
    if (spec.hasBankGroups()) {
        const unsigned rg =
            r * spec.effGroups() + qr.coord.bankGroup;
        ready = std::max(ready, nextActGroup[rg]);
    }
    // tFAW == 0: the standard has no four-activate window.
    if (spec.tFAW > 0 && actWindow[rl].size() >= 4)
        ready = std::max(ready,
                         actWindow[rl].front() + spec.cyc(spec.tFAW));
    return std::max(ready, now_t);
}

bool
DramController::advance(QueuedReq &qr, Tick now_t)
{
    Bank &bank = bankOf(qr.coord);
    const unsigned r = qr.coord.rank;
    const unsigned rg = r * spec.effGroups() + qr.coord.bankGroup;

    if (bank.isOpen() && bank.openRow() == qr.coord.row) {
        // Row hit: issue the CAS. Writes may carry extra burst clocks
        // for on-die write CRC (DDR5).
        const bool is_wr = qr.req.isWrite;
        const Tick data_start =
            now_t + spec.cyc(is_wr ? spec.tCWL : spec.tCL);
        const Tick data_end =
            data_start +
            spec.cyc(spec.tBL + (is_wr ? spec.wrCrcCycles : 0));

        const unsigned lane = laneOf(qr.coord);
        if (is_wr) {
            bank.write(now_t, spec);
            ++statWrites;
            // Write-to-read turnaround on this rank's lane.
            const unsigned rl = rankLane(r, lane);
            nextRdCas[rl] = std::max(
                nextRdCas[rl], data_end + spec.cyc(spec.tWTRl));
        } else {
            bank.read(now_t, spec);
            ++statReads;
            // Read-to-write turnaround (direction change on this
            // lane's data bus, so every rank sharing the lane waits).
            for (unsigned rr = 0; rr < ranks; ++rr) {
                const unsigned rl = rankLane(rr, lane);
                nextWrCas[rl] = std::max(
                    nextWrCas[rl],
                    data_end > spec.cyc(spec.tCWL)
                        ? data_end - spec.cyc(spec.tCWL)
                              + spec.cyc(spec.tRTW)
                        : spec.cyc(spec.tRTW));
            }
        }
        nextCasAnyGroup[lane] = now_t + spec.cyc(spec.tCCDs);
        if (spec.hasBankGroups())
            nextCasSameGroup[rg] = now_t + spec.cyc(spec.tCCDl);
        dataBusFreeAt[lane] = data_end;

        statLatency.sample(static_cast<double>(data_end - qr.arrival));
        if (tr)
            tr->complete(trk, is_wr ? nmWr : nmRd, now_t,
                         data_end - now_t);
        if (qr.req.done) {
            queue().schedule(data_end, std::move(qr.req.done),
                             EventPriority::Delivery);
        }
        return true;
    }

    if (!bank.isOpen()) {
        bank.activate(now_t, qr.coord.row, spec);
        ++statActs;
        const unsigned rl = rankLane(r, laneOf(qr.coord));
        if (tr) {
            tr->instant(trk, nmAct, now_t, qr.coord.row);
            // The ACT was tFAW-bound exactly when the fourth-previous
            // ACT plus tFAW lands on this issue tick (issue legality
            // guarantees <=; equality means the window was binding).
            if (spec.tFAW > 0 && actWindow[rl].size() >= 4 &&
                actWindow[rl].front() + spec.cyc(spec.tFAW) == now_t)
                tr->instant(trk, nmFaw, now_t, r);
        }
        nextActRank[rl] = now_t + spec.cyc(spec.tRRDs);
        if (spec.hasBankGroups())
            nextActGroup[rg] = now_t + spec.cyc(spec.tRRDl);
        if (spec.tFAW > 0) {
            actWindow[rl].push_back(now_t);
            if (actWindow[rl].size() > 4)
                actWindow[rl].pop_front();
        }
        return false;
    }

    // Row conflict: precharge.
    bank.precharge(now_t, spec);
    ++statPres;
    if (tr)
        tr->instant(trk, nmPre, now_t, qr.coord.row);
    return false;
}

void
DramController::tick()
{
    const Tick now_t = now();

    // Choose the active queue: reads have priority unless the write
    // queue is draining or reads are empty.
    if (drainingWrites && writeQ.size() <= writeLowWatermark)
        drainingWrites = false;
    const bool serve_writes =
        (drainingWrites || readQ.empty()) && !writeQ.empty();
    std::deque<QueuedReq> &q = serve_writes ? writeQ : readQ;

    Tick best_ready = maxTick;
    if (!q.empty()) {
        const std::size_t idx = sched->pick(*this, q, now_t, best_ready);
        if (idx != npos) {
            QueuedReq &qr = q[static_cast<std::size_t>(idx)];
            const bool was_full =
                readQ.size() >= readQCap || writeQ.size() >= writeQCap;
            // Row hits retire the request; ACT/PRE leave it queued.
            const bool hit = advance(qr, now_t);
            if (hit) {
                q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
                if (was_full && onUnblock)
                    queue().scheduleIn(0, onUnblock,
                                       EventPriority::Control);
            }
            best_ready = now_t + clock().period();
        }
    }

    // Also account for the idle queue so its requests wake us up.
    std::deque<QueuedReq> &other = serve_writes ? readQ : writeQ;
    if (!other.empty()) {
        Tick other_ready = maxTick;
        sched->pick(*this, other, now_t, other_ready);
        best_ready = std::min(best_ready, other_ready);
    }

    if (pending() > 0 && best_ready != maxTick)
        scheduleIssue(std::max(best_ready, now_t + clock().period()));
}

void
DramController::scheduleRefresh(unsigned rank)
{
    queue().scheduleIn(spec.cyc(spec.tREFI),
                       [this, rank] { doRefresh(rank); },
                       EventPriority::Control);
}

void
DramController::doRefresh(unsigned rank)
{
    if (spec.perBankRefresh) {
        // Same-bank refresh (REFsb / REFpb): each tREFI command
        // refreshes one bank round-robin for tRFCpb while the rest of
        // the rank keeps serving. stepReadyAt() sees the refreshing
        // bank's busy-until through Bank::readyAt, so no rank-wide
        // block is needed.
        const unsigned nb = spec.banksPerRank();
        const unsigned b = refreshCursor[rank];
        refreshCursor[rank] = (b + 1) % nb;
        const Tick until = now() + spec.cyc(spec.tRFCpb);
        banks[rank * nb + b].refresh(until);
        ++statRefreshes;
        if (tr)
            tr->complete(trk, nmRef, now(), until - now());
        if (pending() > 0)
            scheduleIssue(clockEdge());
        scheduleRefresh(rank);
        return;
    }
    const Tick until = now() + spec.cyc(spec.tRFC);
    for (unsigned b = 0; b < spec.banksPerRank(); ++b)
        banks[rank * spec.banksPerRank() + b].refresh(until);
    rankBlockedUntil[rank] = until;
    ++statRefreshes;
    if (tr)
        tr->complete(trk, nmRef, now(), until - now());
    if (pending() > 0)
        scheduleIssue(until);
    scheduleRefresh(rank);
}

} // namespace dram
} // namespace dimmlink
