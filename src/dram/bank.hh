/**
 * @file
 * Per-bank DRAM state: the open row plus the earliest tick at which
 * each command type may legally be issued to this bank.
 */

#ifndef DIMMLINK_DRAM_BANK_HH
#define DIMMLINK_DRAM_BANK_HH

#include "common/types.hh"
#include "dram/timing.hh"

namespace dimmlink {
namespace dram {

/** DRAM commands the controller can issue to a bank. */
enum class DramCmd { Act, Pre, Rd, Wr, Ref };

/** One DRAM bank's timing/row state machine. */
class Bank
{
  public:
    static constexpr unsigned noRow = 0xffffffff;

    /** Row currently open in this bank, or noRow. */
    unsigned openRow() const { return openRow_; }
    bool isOpen() const { return openRow_ != noRow; }

    /** Earliest tick at which @p cmd may be issued. */
    Tick
    readyAt(DramCmd cmd) const
    {
        switch (cmd) {
          case DramCmd::Act: return nextAct;
          case DramCmd::Pre: return nextPre;
          case DramCmd::Rd: return nextRead;
          case DramCmd::Wr: return nextWrite;
          default: return 0;
        }
    }

    /** Apply an ACT at tick @p now, opening @p row. */
    void activate(Tick now, unsigned row, const Timing &t);

    /** Apply a PRE at tick @p now. */
    void precharge(Tick now, const Timing &t);

    /** Apply a RD at tick @p now. @pre row open. */
    void read(Tick now, const Timing &t);

    /** Apply a WR at tick @p now. @pre row open. */
    void write(Tick now, const Timing &t);

    /** Force-close for refresh; all timers pushed past @p until. */
    void refresh(Tick until);

  private:
    static void maxInto(Tick &slot, Tick v)
    {
        if (v > slot)
            slot = v;
    }

    unsigned openRow_ = noRow;
    Tick nextAct = 0;
    Tick nextPre = 0;
    Tick nextRead = 0;
    Tick nextWrite = 0;
};

} // namespace dram
} // namespace dimmlink

#endif // DIMMLINK_DRAM_BANK_HH
