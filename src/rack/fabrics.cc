/**
 * @file
 * The registered inter-host fabric implementations. They differ only
 * in how many switch hops a host-forwarded crossing pays: "switch"
 * models one central CXL switch (up to the switch, out of it),
 * "direct" dedicated point-to-point cables between every host pair
 * (no switch at all -- the fully-connected upper bound a real rack
 * approximates with multiple planes).
 */

#include "rack/inter_host_fabric.hh"

namespace dimmlink {
namespace rack {

namespace {

class SwitchFabric : public InterHostFabric
{
  public:
    using InterHostFabric::InterHostFabric;
    unsigned hops(unsigned, unsigned) const override { return 2; }
    const char *kind() const override { return "switch"; }
};

class DirectFabric : public InterHostFabric
{
  public:
    using InterHostFabric::InterHostFabric;
    unsigned hops(unsigned, unsigned) const override { return 0; }
    const char *kind() const override { return "direct"; }
};

InterHostFabricFactory::Registrar regSwitch(
    "switch",
    [](EventQueue &eq, const SystemConfig &cfg, stats::Registry &reg)
        -> std::unique_ptr<InterHostFabric> {
        return std::make_unique<SwitchFabric>(eq, cfg, reg);
    });

InterHostFabricFactory::Registrar regDirect(
    "direct",
    [](EventQueue &eq, const SystemConfig &cfg, stats::Registry &reg)
        -> std::unique_ptr<InterHostFabric> {
        return std::make_unique<DirectFabric>(eq, cfg, reg);
    });

} // namespace

} // namespace rack
} // namespace dimmlink
