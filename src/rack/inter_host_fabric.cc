#include "rack/inter_host_fabric.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace dimmlink {
namespace rack {

namespace {

/** Serialization time of @p bytes at @p gbps (1 GB/s = 1 byte/ns). */
Tick
transferPs(std::uint64_t bytes, double gbps)
{
    return static_cast<Tick>(static_cast<double>(bytes) * 1000.0 /
                             gbps);
}

/** A probe must outlive its own round trip over the rack, even at the
 * top of the 300-1500 ns latency sweep where the DLL's retryTimeoutPs
 * default would be too tight. */
Tick
probeTimeoutFor(const SystemConfig &cfg)
{
    return std::max<Tick>(cfg.link.retryTimeoutPs,
                          4 * (cfg.rack.latencyPs +
                               2 * cfg.rack.switchHopPs));
}

} // namespace

InterHostFabric::InterHostFabric(EventQueue &eq,
                                 const SystemConfig &cfg_,
                                 stats::Registry &reg)
    : eventq(eq),
      cfg(cfg_),
      health(eq, cfg_.faults.suspectAfter, cfg_.faults.reprobeIntervalPs,
             probeTimeoutFor(cfg_)),
      egressFreeAt(cfg_.rack.hosts, 0),
      ingressFreeAt(cfg_.rack.hosts, 0),
      statCrossings(reg.group("rack").scalar("crossings")),
      statForwardedBytes(reg.group("rack").scalar("forwardedBytes")),
      statPooledTransfers(reg.group("rack").scalar("pooledTransfers")),
      statPooledBytes(reg.group("rack").scalar("pooledBytes")),
      statReroutes(reg.group("rack").scalar("reroutes")),
      statPortDown(reg.group("rack").scalar("portDownEvents")),
      statPortRecovered(reg.group("rack").scalar("portRecoveredEvents")),
      statProbesSent(reg.group("rack").scalar("healthProbesSent")),
      statProbesFailed(reg.group("rack").scalar("healthProbesFailed")),
      statCrossLatencyPs(reg.group("rack").distribution("crossLatencyPs"))
{
    for (unsigned h = 0; h < cfg.rack.hosts; ++h) {
        health.addEdge(static_cast<int>(h), kPort);
        health.addEdge(static_cast<int>(h), kGateway);
    }

    fault::LinkHealth::Callbacks cbs;
    // A rack probe is a CXL round trip: it vanishes when the far end
    // is inside its outage window (the timeout then declares it
    // failed), and answers clean after one RTT otherwise -- so a
    // finished outage heals through the ordinary reprobe cadence.
    cbs.sendProbe = [this](int a, int b, std::uint64_t id) {
        ++statProbesSent;
        const Edge e{a, b};
        if (dead(e))
            return;
        const Tick rtt =
            2 * (cfg.rack.latencyPs + 2 * cfg.rack.switchHopPs);
        eventq.scheduleIn(rtt, [this, a, b, id, e] {
            health.probeResult(a, b, id, !dead(e));
        });
    };
    cbs.onTransition = [this](int a, int b, fault::LinkState from,
                              fault::LinkState to) {
        if (to == fault::LinkState::Down) {
            ++statPortDown;
            if (availSink)
                availSink(static_cast<unsigned>(a), b == kGateway,
                          false);
        } else if (from == fault::LinkState::Down &&
                   to == fault::LinkState::Up) {
            ++statPortRecovered;
            if (availSink)
                availSink(static_cast<unsigned>(a), b == kGateway,
                          true);
        }
    };
    cbs.onProbeFailed = [this](int, int) { ++statProbesFailed; };
    health.setCallbacks(std::move(cbs));

    if (cfg.rack.hostDownAtPs != 0)
        scheduleOutage({static_cast<int>(cfg.rack.hostDownId), kPort},
                       cfg.rack.hostDownAtPs, cfg.rack.hostDownForPs);
    if (cfg.rack.nodeDownAtPs != 0)
        scheduleOutage({static_cast<int>(
                            cfg.hostOfGroup(cfg.rack.nodeDownId)),
                        kGateway},
                       cfg.rack.nodeDownAtPs, cfg.rack.nodeDownForPs);
    if (!outage.empty())
        statParked = &reg.group("rack").scalar("parkedTransfers");
}

Tick
InterHostFabric::parkUntil(const Edge &e1, const Edge &e2) const
{
    Tick until = 0;
    for (const Edge &e : {e1, e2}) {
        if (!dead(e))
            continue;
        const Tick end = outage.at(e).second;
        if (end == 0)
            return 0;
        until = std::max(until, end);
    }
    return until;
}

bool
InterHostFabric::dead(const Edge &e) const
{
    const auto it = outage.find(e);
    if (it == outage.end())
        return false;
    const Tick now = eventq.now();
    if (now < it->second.first)
        return false;
    return it->second.second == 0 || now < it->second.second;
}

void
InterHostFabric::scheduleOutage(Edge e, Tick at, Tick for_ps)
{
    outage[e] = {at, for_ps == 0 ? 0 : at + for_ps};
    eventq.schedule(at, [this, e] {
        // Blame the edge into the suspect state; the probe the health
        // machinery then sends runs into the outage window, times
        // out, and the edge goes down until a post-outage reprobe
        // answers clean.
        for (unsigned i = 0; i < cfg.faults.suspectAfter; ++i)
            health.noteExhausted({e});
    });
}

bool
InterHostFabric::hostUp(unsigned h) const
{
    return health.state(static_cast<int>(h), kPort) !=
           fault::LinkState::Down;
}

bool
InterHostFabric::bridgeUp(unsigned a, unsigned b) const
{
    return health.state(static_cast<int>(a), kGateway) !=
               fault::LinkState::Down &&
           health.state(static_cast<int>(b), kGateway) !=
               fault::LinkState::Down;
}

Tick
InterHostFabric::serialize(Tick &free_at, Tick not_before, double gbps,
                           std::uint64_t bytes)
{
    const Tick start = std::max(not_before, free_at);
    free_at = start + transferPs(bytes, gbps);
    return free_at;
}

void
InterHostFabric::crossing(unsigned a, unsigned b, std::uint64_t bytes,
                          std::function<void()> done)
{
    // A transfer admitted onto a dead port (the DlFabric reroutes
    // only after the health machinery detects the outage) is stuck
    // until the port recovers: park it and re-admit at outage end.
    // Permanent outages keep the pre-parking delivery semantics so
    // runs without the reliability layer never hang behind them.
    if (const Tick until = parkUntil({static_cast<int>(a), kPort},
                                     {static_cast<int>(b), kPort})) {
        if (statParked)
            ++*statParked;
        eventq.schedule(until,
                        [this, a, b, bytes,
                         done = std::move(done)]() mutable {
                            crossing(a, b, bytes, std::move(done));
                        });
        return;
    }
    const Tick now = eventq.now();
    ++statCrossings;
    statForwardedBytes += static_cast<double>(bytes);
    const Tick out_end =
        serialize(egressFreeAt[a], now, cfg.rack.portGBps, bytes);
    const Tick arrive = out_end + cfg.rack.latencyPs +
                        hops(a, b) * cfg.rack.switchHopPs;
    const Tick done_at =
        serialize(ingressFreeAt[b], arrive, cfg.rack.portGBps, bytes);
    statCrossLatencyPs.sample(static_cast<double>(done_at - now));
    eventq.schedule(done_at, std::move(done));
}

void
InterHostFabric::pooledSend(unsigned a, unsigned b,
                            std::uint64_t bytes,
                            std::function<void()> done)
{
    // Same parking rule as crossing(), over the gateway attaches.
    if (const Tick until =
            parkUntil({static_cast<int>(a), kGateway},
                      {static_cast<int>(b), kGateway})) {
        if (statParked)
            ++*statParked;
        eventq.schedule(until,
                        [this, a, b, bytes,
                         done = std::move(done)]() mutable {
                            pooledSend(a, b, bytes, std::move(done));
                        });
        return;
    }
    const Tick now = eventq.now();
    ++statPooledTransfers;
    statPooledBytes += static_cast<double>(bytes);
    // One DL-Bridge hop into the source gateway's lane and one out of
    // the destination gateway, then the cable itself; no host CPU and
    // no switch on the path.
    const Tick gateway =
        2 * (cfg.link.routerLatencyPs + cfg.link.wireLatencyPs);
    const Tick lane_end = serialize(laneFreeAt[{static_cast<int>(a),
                                                static_cast<int>(b)}],
                                    now, cfg.rack.pooledGBps, bytes);
    const Tick done_at = lane_end + cfg.rack.latencyPs + gateway;
    statCrossLatencyPs.sample(static_cast<double>(done_at - now));
    eventq.schedule(done_at, std::move(done));
}

std::string
InterHostFabric::debugDump() const
{
    if (health.numSuspectOrDown() == 0)
        return "";
    std::ostringstream os;
    os << "rack (" << kind() << ") health:\n" << health.dump();
    return os.str();
}

std::unique_ptr<InterHostFabric>
makeInterHostFabric(EventQueue &eq, const SystemConfig &cfg,
                    stats::Registry &reg)
{
    return InterHostFabricFactory::instance().create(cfg.rack.fabric,
                                                     eq, cfg, reg);
}

} // namespace rack
} // namespace dimmlink
