/**
 * @file
 * Rack-scale memory pooling: the inter-host fabric connecting N hosts
 * that share the pool of NMP-DIMM nodes (docs/rack.md). The DL groups
 * partition across the hosts; inter-group traffic whose endpoints live
 * under different hosts crosses this fabric, either host-forwarded
 * (source host's rack port -> switch hops -> destination host's rack
 * port, composed with the existing polling + Forwarder path at both
 * ends) or over pooled DIMM-Link bridge lanes connecting the hosts'
 * gateway pool nodes directly, bypassing both host CPUs.
 *
 * The fabric owns the rack-level availability state: each host's rack
 * port and each host's bridge attach run PR 5's LinkHealth state
 * machine (up -> suspect -> down, probe-driven recovery), fed by the
 * scheduled rack.hostDown* / rack.nodeDown* outages. The DlFabric
 * consults hostUp()/bridgeUp() per transfer and reroutes onto the
 * surviving path, counting rack.reroutes.
 *
 * Everything here executes on the host shard (shard 0 under the
 * sharded kernel): one writer for all port/lane busy-until state and
 * the health machinery, so stats stay byte-identical at every
 * sim.threads count.
 */

#ifndef DIMMLINK_RACK_INTER_HOST_FABRIC_HH
#define DIMMLINK_RACK_INTER_HOST_FABRIC_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/factory.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "fault/link_health.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace rack {

class InterHostFabric
{
  public:
    InterHostFabric(EventQueue &eq, const SystemConfig &cfg,
                    stats::Registry &reg);
    virtual ~InterHostFabric() = default;

    /** Switch hops a crossing from host @p a to host @p b pays. */
    virtual unsigned hops(unsigned a, unsigned b) const = 0;

    /** Registered name ("switch", "direct"). */
    virtual const char *kind() const = 0;

    /** Is host @p h's rack port (and forwarding CPU) routable? */
    bool hostUp(unsigned h) const;
    /** Are both gateway bridge attaches of the @p a <-> @p b pooled
     * lane routable? */
    bool bridgeUp(unsigned a, unsigned b) const;

    /**
     * Host-forwarded crossing: serialize @p bytes through host @p a's
     * egress port, cross latencyPs + hops() * switchHopPs of fabric,
     * serialize through host @p b's ingress port. @p done fires when
     * the payload has landed in host b's memory domain (the caller
     * then descends over b's channels via the Forwarder).
     */
    void crossing(unsigned a, unsigned b, std::uint64_t bytes,
                  std::function<void()> done);

    /**
     * Pooled-bridge crossing: serialize @p bytes on the directed
     * a -> b bridge lane at pooledGBps and pay the cable latency plus
     * one DL-Bridge hop at each gateway, with no host CPU or switch
     * involvement. @p done fires at the destination gateway.
     */
    void pooledSend(unsigned a, unsigned b, std::uint64_t bytes,
                    std::function<void()> done);

    /** The DlFabric flipped a transfer onto its failover route. */
    void noteReroute() { ++statReroutes; }

    /**
     * Availability feed for the serving circuit breaker: fired on the
     * host shard whenever a host's rack port (@p is_gateway false) or
     * bridge attach (@p is_gateway true) crosses the Down boundary of
     * its health state machine. System fans the update out to each
     * shard's HostHealthView.
     */
    using AvailabilitySink =
        std::function<void(unsigned host, bool is_gateway, bool up)>;
    void setAvailabilitySink(AvailabilitySink s)
    {
        availSink = std::move(s);
    }

    /** One line per non-up rack edge, for hang diagnostics. */
    std::string debugDump() const;

  protected:
    EventQueue &eventq;
    const SystemConfig &cfg;

  private:
    /** Synthetic far-end columns of the health graph: (host, kPort)
     * is the host's rack port, (host, kGateway) its bridge attach. */
    static constexpr int kPort = -1;
    static constexpr int kGateway = -2;

    using Edge = std::pair<int, int>;

    bool dead(const Edge &e) const;
    void scheduleOutage(Edge e, Tick at, Tick for_ps);
    /** The tick a transfer admitted onto @p e1 / @p e2 must park
     * until (0 = no parking: both edges live, or a dead edge's
     * outage is permanent and delivery keeps the pre-outage
     * semantics so fault-free paths never hang behind it). */
    Tick parkUntil(const Edge &e1, const Edge &e2) const;
    /** Claim the busy-until lane no earlier than @p not_before,
     * serialize @p bytes at @p gbps, and return the tick the last
     * byte leaves the lane. */
    Tick serialize(Tick &free_at, Tick not_before, double gbps,
                   std::uint64_t bytes);

    fault::LinkHealth health;
    /** Busy-until of each host's egress / ingress rack port. */
    std::vector<Tick> egressFreeAt;
    std::vector<Tick> ingressFreeAt;
    /** Busy-until of each directed pooled bridge lane. */
    std::map<Edge, Tick> laneFreeAt;
    /** Outage windows keyed by health edge; second = end tick
     * (0 = permanent). */
    std::map<Edge, std::pair<Tick, Tick>> outage;

    stats::Scalar &statCrossings;
    stats::Scalar &statForwardedBytes;
    stats::Scalar &statPooledTransfers;
    stats::Scalar &statPooledBytes;
    stats::Scalar &statReroutes;
    stats::Scalar &statPortDown;
    stats::Scalar &statPortRecovered;
    stats::Scalar &statProbesSent;
    stats::Scalar &statProbesFailed;
    stats::Distribution &statCrossLatencyPs;
    /** Created only when an outage is scheduled, so outage-free runs
     * keep byte-identical stats output. */
    stats::Scalar *statParked = nullptr;
    AvailabilitySink availSink;
};

/**
 * The inter-host fabric registry, keyed by rack.fabric. Like the IDC
 * FabricFactory, implementations self-register from their own
 * translation unit (rack/fabrics.cc).
 */
using InterHostFabricFactory =
    Factory<InterHostFabric, EventQueue &, const SystemConfig &,
            stats::Registry &>;

/** Build the fabric registered under cfg.rack.fabric. */
std::unique_ptr<InterHostFabric> makeInterHostFabric(
    EventQueue &eq, const SystemConfig &cfg, stats::Registry &reg);

} // namespace rack

template <>
struct FactoryTraits<rack::InterHostFabric>
{
    static constexpr const char *noun = "inter-host fabric";
};

} // namespace dimmlink

#endif // DIMMLINK_RACK_INTER_HOST_FABRIC_HH
