/**
 * @file
 * The barrier endpoint interface the NMP cores synchronize through.
 * Implementations (sync/sync_manager.hh) realize the centralized and
 * hierarchical message-passing schemes of Section III-D.
 */

#ifndef DIMMLINK_SYNC_BARRIER_HH
#define DIMMLINK_SYNC_BARRIER_HH

#include <functional>

#include "common/types.hh"

namespace dimmlink {

class BarrierEndpoint
{
  public:
    virtual ~BarrierEndpoint() = default;

    /**
     * Thread @p tid on DIMM @p dimm reached the barrier. @p release
     * is invoked once every participating thread has arrived and the
     * release notification has propagated back.
     */
    virtual void arrive(ThreadId tid, DimmId dimm,
                        std::function<void()> release) = 0;
};

} // namespace dimmlink

#endif // DIMMLINK_SYNC_BARRIER_HH
