/**
 * @file
 * Message-passing lock support (Section III-B lists synchronization
 * among the DL functions; prior NMP systems use both barriers and
 * locks). Each lock is homed on a DIMM; acquire/release requests are
 * single-flit DL messages to the home, which maintains a FIFO grant
 * queue — a queue lock in the spirit of SynCron/plock, with no
 * spinning traffic on the fabric.
 */

#ifndef DIMMLINK_SYNC_LOCK_MANAGER_HH
#define DIMMLINK_SYNC_LOCK_MANAGER_HH

#include <deque>
#include <functional>
#include <map>

#include "common/config.hh"
#include "common/stats.hh"
#include "idc/fabric.hh"

namespace dimmlink {

class LockManager
{
  public:
    using LockId = std::uint32_t;

    LockManager(EventQueue &eq, const SystemConfig &cfg,
                idc::Fabric *fabric, stats::Registry &reg);

    /** Declare a lock homed on DIMM @p home. */
    void createLock(LockId id, DimmId home);

    /**
     * Request the lock from a thread running on @p dimm; @p granted
     * fires once the home DIMM has granted ownership and the grant
     * message has returned.
     */
    void acquire(LockId id, DimmId dimm,
                 std::function<void()> granted);

    /** Release the lock; the next waiter (if any) is granted. */
    void release(LockId id, DimmId dimm);

    /** True when nobody holds or waits for the lock. */
    bool idle(LockId id) const;

    std::uint64_t
    acquisitions() const
    {
        return static_cast<std::uint64_t>(statAcquires.value());
    }

  private:
    struct Lock
    {
        DimmId home = 0;
        bool held = false;
        std::deque<std::pair<DimmId, std::function<void()>>> waiters;
    };

    /** One-flit control message src -> dst, then @p done. */
    void message(DimmId src, DimmId dst, std::function<void()> done);
    void grantNext(LockId id);

    EventQueue &eventq;
    const SystemConfig &cfg;
    idc::Fabric *fabric;
    std::map<LockId, Lock> locks;

    stats::Scalar &statAcquires;
    stats::Scalar &statContended;
};

} // namespace dimmlink

#endif // DIMMLINK_SYNC_LOCK_MANAGER_HH
