#include "sync/sync_manager.hh"

#include <algorithm>

#include "common/log.hh"

namespace dimmlink {

SyncManager::SyncManager(EventQueue &eq, const SystemConfig &cfg_,
                         idc::Fabric *fabric_, stats::Registry &reg)
    : eventq(eq),
      cfg(cfg_),
      fabric(fabric_),
      statEpisodes(reg.group("sync").scalar("episodes")),
      statMessages(reg.group("sync").scalar("messages")),
      statBarrierPs(reg.group("sync").distribution("barrierPs"))
{
    current = std::make_shared<Episode>();
}

DimmId
SyncManager::masterOf(unsigned group) const
{
    return static_cast<DimmId>(group * cfg.groupSize() +
                               cfg.groupSize() / 2);
}

DimmId
SyncManager::globalMaster() const
{
    return masterOf(0);
}

void
SyncManager::setParticipants(std::vector<DimmId> thread_home)
{
    threadHome = std::move(thread_home);
    threadsOn.clear();
    dimmsInGroup.clear();
    for (DimmId d : threadHome)
        ++threadsOn[d];
    activeDimms = static_cast<unsigned>(threadsOn.size());
    for (const auto &[d, n] : threadsOn) {
        (void)n;
        ++dimmsInGroup[cfg.groupOf(d)];
    }
    activeGroups = static_cast<unsigned>(dimmsInGroup.size());
    current = std::make_shared<Episode>();
}

void
SyncManager::sendSync(DimmId src, DimmId dst,
                      std::function<void()> done)
{
    if (src == dst) {
        eventq.scheduleIn(intraDimmSyncPs, std::move(done),
                          EventPriority::Control);
        return;
    }
    ++statMessages;

    // The source master core serializes on issuing the message.
    Tick &src_free = masterFreeAt[src];
    const Tick issue_at = std::max(eventq.now(), src_free);
    src_free = issue_at + masterProcPs;

    auto submit = [this, src, dst, done = std::move(done)]() mutable {
        idc::Transaction t;
        t.type = idc::Transaction::Type::SyncMessage;
        t.src = src;
        t.dst = dst;
        t.bytes = syncMsgBytes;
        // The destination master core serializes on processing it.
        t.onComplete = [this, dst, done = std::move(done)]() mutable {
            Tick &dst_free = masterFreeAt[dst];
            const Tick recv_at =
                std::max(eventq.now(), dst_free) + masterProcPs;
            dst_free = recv_at;
            eventq.schedule(recv_at, std::move(done),
                            EventPriority::Control);
        };
        fabric->submit(std::move(t));
    };
    eventq.schedule(src_free, std::move(submit),
                    EventPriority::Control);
}

void
SyncManager::arrive(ThreadId tid, DimmId dimm,
                    std::function<void()> release)
{
    if (tid >= threadHome.size())
        panic("thread %u arrived at a barrier without participants "
              "set", tid);

    auto ep = current;
    if (ep->arrivedThreads == 0)
        episodeStart = eventq.now();
    ++ep->arrivedThreads;
    ep->waiting[dimm].push_back(std::move(release));
    const auto need = threadsOn.find(dimm);
    if (need == threadsOn.end())
        panic("thread %u arrived on unexpected DIMM %u", tid, dimm);

    if (cfg.syncScheme == SyncScheme::Centralized) {
        // No local aggregation: every thread's arrival is its own
        // message to the global master core (the organization the
        // MCN/AIM baselines and DIMM-Link-Central use).
        sendSync(dimm, globalMaster(), [this, ep] {
            if (++ep->dimmsComplete ==
                static_cast<unsigned>(threadHome.size()))
                beginRelease(ep);
        });
        return;
    }

    const unsigned arrived = ++ep->dimmArrived[dimm];
    if (arrived == need->second) {
        // All local threads reached the DIMM's master core.
        eventq.scheduleIn(intraDimmSyncPs,
                          [this, ep, dimm] { dimmComplete(ep, dimm); },
                          EventPriority::Control);
    }
}

void
SyncManager::dimmComplete(std::shared_ptr<Episode> ep, DimmId dimm)
{
    // Hierarchical: report to the group's master DIMM.
    const unsigned group = cfg.groupOf(dimm);
    sendSync(dimm, masterOf(group), [this, ep, group] {
        if (++ep->groupArrived[group] == dimmsInGroup[group])
            groupComplete(ep, group);
    });
}

void
SyncManager::groupComplete(std::shared_ptr<Episode> ep, unsigned group)
{
    sendSync(masterOf(group), globalMaster(), [this, ep] {
        if (++ep->groupsComplete == activeGroups)
            beginRelease(ep);
    });
}

void
SyncManager::beginRelease(std::shared_ptr<Episode> ep)
{
    // Detach the finished episode; new arrivals start the next one.
    if (current == ep)
        current = std::make_shared<Episode>();
    ++statEpisodes;
    statBarrierPs.sample(
        static_cast<double>(eventq.now() - episodeStart));

    if (cfg.syncScheme == SyncScheme::Centralized) {
        // One release message per waiting thread (no aggregation).
        for (auto &[dimm, cbs] : ep->waiting) {
            const DimmId d = dimm;
            for (auto &cb : cbs) {
                sendSync(globalMaster(), d,
                         [cb = std::move(cb)] { cb(); });
            }
        }
        ep->waiting.clear();
        return;
    }

    // Hierarchical release: global master -> group masters -> DIMMs.
    std::map<unsigned, std::vector<DimmId>> by_group;
    for (const auto &[dimm, cbs] : ep->waiting) {
        (void)cbs;
        by_group[cfg.groupOf(dimm)].push_back(dimm);
    }
    for (const auto &[group, dimms] : by_group) {
        const auto dimms_copy = dimms;
        sendSync(globalMaster(), masterOf(group),
                 [this, ep, group, dimms_copy] {
                     for (DimmId d : dimms_copy) {
                         sendSync(masterOf(group), d, [this, ep, d] {
                             releaseDimm(ep, d);
                         });
                     }
                 });
    }
}

void
SyncManager::releaseDimm(std::shared_ptr<Episode> ep, DimmId dimm)
{
    auto it = ep->waiting.find(dimm);
    if (it == ep->waiting.end())
        return;
    auto cbs = std::move(it->second);
    ep->waiting.erase(it);
    // The DIMM's master core fans the release out locally.
    eventq.scheduleIn(intraDimmSyncPs,
                      [cbs = std::move(cbs)] {
                          for (const auto &cb : cbs)
                              cb();
                      },
                      EventPriority::Core);
}

} // namespace dimmlink
