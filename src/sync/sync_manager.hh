/**
 * @file
 * Message-passing barrier synchronization (Section III-D). Two
 * schemes:
 *
 *  - Centralized: one global master NMP core collects an arrival
 *    message from every thread's DIMM and releases everyone directly
 *    (the organization of the MCN / AIM baselines and of the
 *    DIMM-Link-Central configuration in Fig. 14).
 *
 *  - Hierarchical: a master core aggregates arrivals inside each
 *    DIMM, master DIMMs (the middle DIMM of each DL group) aggregate
 *    inside each group, and the group masters coordinate globally,
 *    cutting inter-DIMM traffic and host polling.
 */

#ifndef DIMMLINK_SYNC_SYNC_MANAGER_HH
#define DIMMLINK_SYNC_SYNC_MANAGER_HH

#include <map>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "idc/fabric.hh"
#include "sync/barrier.hh"

namespace dimmlink {

class SyncManager : public BarrierEndpoint
{
  public:
    SyncManager(EventQueue &eq, const SystemConfig &cfg,
                idc::Fabric *fabric, stats::Registry &reg);

    /** Declare where each thread runs (index = ThreadId). Must be
     * called before the first arrive() and after every migration. */
    void setParticipants(std::vector<DimmId> thread_home);

    void arrive(ThreadId tid, DimmId dimm,
                std::function<void()> release) override;

    /** The sync master DIMM of a group (middle of the group). */
    DimmId masterOf(unsigned group) const;
    /** The global master DIMM. */
    DimmId globalMaster() const;

    /** Completed barrier episodes. */
    std::uint64_t episodes() const
    {
        return static_cast<std::uint64_t>(statEpisodes.value());
    }

  private:
    struct Episode
    {
        unsigned arrivedThreads = 0;
        std::map<DimmId, unsigned> dimmArrived;
        unsigned dimmsComplete = 0;
        std::map<unsigned, unsigned> groupArrived;
        unsigned groupsComplete = 0;
        std::map<DimmId, std::vector<std::function<void()>>> waiting;
    };

    /** Latency of intra-DIMM master-core aggregation. */
    static constexpr Tick intraDimmSyncPs = 50 * tickPerNs;
    /** Sync message payload (single-flit packets). */
    static constexpr unsigned syncMsgBytes = 16;
    /** A master core serializes on handling each sent/received sync
     * message (packetize/decode + counter update). Distributing this
     * serialization is what makes the hierarchy scale. */
    static constexpr Tick masterProcPs = 40 * tickPerNs;

    void sendSync(DimmId src, DimmId dst, std::function<void()> done);
    void dimmComplete(std::shared_ptr<Episode> ep, DimmId dimm);
    void groupComplete(std::shared_ptr<Episode> ep, unsigned group);
    void beginRelease(std::shared_ptr<Episode> ep);
    void releaseDimm(std::shared_ptr<Episode> ep, DimmId dimm);

    EventQueue &eventq;
    const SystemConfig &cfg;
    idc::Fabric *fabric;

    std::vector<DimmId> threadHome;
    std::map<DimmId, unsigned> threadsOn;
    std::map<unsigned, unsigned> dimmsInGroup;
    unsigned activeDimms = 0;
    unsigned activeGroups = 0;

    std::shared_ptr<Episode> current;
    /** Busy-until of each DIMM's master core. */
    std::map<DimmId, Tick> masterFreeAt;

    stats::Scalar &statEpisodes;
    stats::Scalar &statMessages;
    stats::Distribution &statBarrierPs;
    Tick episodeStart = 0;
};

} // namespace dimmlink

#endif // DIMMLINK_SYNC_SYNC_MANAGER_HH
