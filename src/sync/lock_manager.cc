#include "sync/lock_manager.hh"

#include "common/log.hh"

namespace dimmlink {

LockManager::LockManager(EventQueue &eq, const SystemConfig &cfg_,
                         idc::Fabric *fabric_, stats::Registry &reg)
    : eventq(eq),
      cfg(cfg_),
      fabric(fabric_),
      statAcquires(reg.group("sync.locks").scalar("acquires")),
      statContended(reg.group("sync.locks").scalar("contended"))
{
}

void
LockManager::createLock(LockId id, DimmId home)
{
    if (locks.count(id))
        panic("lock %u already exists", id);
    locks[id].home = home;
}

void
LockManager::message(DimmId src, DimmId dst,
                     std::function<void()> done)
{
    if (src == dst) {
        eventq.scheduleIn(50 * tickPerNs, std::move(done),
                          EventPriority::Control);
        return;
    }
    idc::Transaction t;
    t.type = idc::Transaction::Type::SyncMessage;
    t.src = src;
    t.dst = dst;
    t.bytes = 16;
    t.onComplete = std::move(done);
    fabric->submit(std::move(t));
}

void
LockManager::acquire(LockId id, DimmId dimm,
                     std::function<void()> granted)
{
    auto it = locks.find(id);
    if (it == locks.end())
        panic("acquire of unknown lock %u", id);
    Lock &lock = it->second;

    // Request message to the home DIMM; the home enqueues/grants.
    message(dimm, lock.home,
            [this, id, dimm, granted = std::move(granted)]() mutable {
                Lock &lock = locks.at(id);
                ++statAcquires;
                if (lock.held) {
                    ++statContended;
                    lock.waiters.emplace_back(dimm,
                                              std::move(granted));
                    return;
                }
                lock.held = true;
                // Grant message travels back to the requester.
                message(lock.home, dimm, std::move(granted));
            });
}

void
LockManager::release(LockId id, DimmId dimm)
{
    auto it = locks.find(id);
    if (it == locks.end())
        panic("release of unknown lock %u", id);
    Lock &lock = it->second;
    if (!lock.held)
        panic("release of lock %u that is not held", id);

    message(dimm, lock.home, [this, id] { grantNext(id); });
}

void
LockManager::grantNext(LockId id)
{
    Lock &lock = locks.at(id);
    if (lock.waiters.empty()) {
        lock.held = false;
        return;
    }
    auto [dimm, granted] = std::move(lock.waiters.front());
    lock.waiters.pop_front();
    // Ownership passes directly to the next waiter.
    message(lock.home, dimm, std::move(granted));
}

bool
LockManager::idle(LockId id) const
{
    const auto it = locks.find(id);
    if (it == locks.end())
        return true;
    return !it->second.held && it->second.waiters.empty();
}

} // namespace dimmlink
