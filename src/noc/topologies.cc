/**
 * @file
 * The four registered DL-group topologies (Fig. 17). Each registrar
 * keys on the Topology enum's toString() name.
 */

#include "noc/topology.hh"

namespace dimmlink {
namespace noc {

namespace {

void
buildChain(TopologyGraph &g)
{
    for (unsigned i = 0; i + 1 < g.numNodes(); ++i)
        g.addEdge(static_cast<int>(i), static_cast<int>(i + 1));
}

/** The practical prototype: a linear chain of DIMMs. */
class HalfRingBuilder : public TopologyBuilder
{
  public:
    void build(TopologyGraph &g) const override { buildChain(g); }
};

/** Chain plus a wrap-around link (cyclic once it is a real ring). */
class RingBuilder : public TopologyBuilder
{
  public:
    void
    build(TopologyGraph &g) const override
    {
        buildChain(g);
        const unsigned n = g.numNodes();
        if (n > 2) {
            g.addEdge(static_cast<int>(n - 1), 0);
            g.markCyclic();
        }
    }
};

/**
 * Two facing rows of DIMM slots: a 2 x (n/2) grid, with row
 * wrap-around links on the torus. Groups of one or two nodes degrade
 * to a chain (and fall back to BFS routing). Larger grids use
 * row-first ("XY") routing: move along the own row (with wrap on a
 * torus) until the destination column, then take the single column
 * hop. Row channels are the only rings, and packets never turn back
 * into a row, which keeps the channel-dependency graph deadlock-free
 * with bubble injection.
 */
class GridBuilder : public TopologyBuilder
{
  public:
    explicit GridBuilder(bool torus) : torus(torus) {}

    void
    build(TopologyGraph &g) const override
    {
        const unsigned n = g.numNodes();
        if (n <= 2) {
            buildChain(g);
            return;
        }
        const unsigned cols = n / 2;
        auto id = [cols](unsigned r, unsigned c) {
            return static_cast<int>(r * cols + c);
        };
        for (unsigned r = 0; r < 2; ++r)
            for (unsigned c = 0; c + 1 < cols; ++c)
                g.addEdge(id(r, c), id(r, c + 1));
        for (unsigned c = 0; c < cols; ++c)
            g.addEdge(id(0, c), id(1, c));
        const bool wrap = torus && cols > 2;
        if (wrap) {
            // Row wrap-around; the column wrap would duplicate the
            // existing 2-row vertical edges.
            for (unsigned r = 0; r < 2; ++r)
                g.addEdge(id(r, 0), id(r, cols - 1));
            g.markCyclic();
        }
        g.setUnicastRoute([cols, wrap](int node, int dst) {
            const unsigned row = static_cast<unsigned>(node) / cols;
            const unsigned col = static_cast<unsigned>(node) % cols;
            const unsigned drow = static_cast<unsigned>(dst) / cols;
            const unsigned dcol = static_cast<unsigned>(dst) % cols;
            auto gid = [cols](unsigned r, unsigned c) {
                return static_cast<int>(r * cols + c);
            };
            if (col == dcol)
                return gid(drow, dcol); // the column hop (or there)
            // Choose the shorter row direction (wrap on torus only).
            const unsigned right = (dcol + cols - col) % cols;
            const unsigned left = (col + cols - dcol) % cols;
            const bool go_right = wrap ? right <= left : dcol > col;
            const unsigned next_col = go_right
                ? (col + 1) % cols
                : (col + cols - 1) % cols;
            return gid(row, next_col);
        });
    }

  private:
    const bool torus;
};

TopologyFactory::Registrar regHalfRing("HalfRing", []()
    -> std::unique_ptr<TopologyBuilder> {
    return std::make_unique<HalfRingBuilder>();
});

TopologyFactory::Registrar regRing("Ring", []()
    -> std::unique_ptr<TopologyBuilder> {
    return std::make_unique<RingBuilder>();
});

TopologyFactory::Registrar regMesh("Mesh", []()
    -> std::unique_ptr<TopologyBuilder> {
    return std::make_unique<GridBuilder>(false);
});

TopologyFactory::Registrar regTorus("Torus", []()
    -> std::unique_ptr<TopologyBuilder> {
    return std::make_unique<GridBuilder>(true);
});

} // namespace

} // namespace noc
} // namespace dimmlink
