/**
 * @file
 * The DL-Router inside each DIMM's DL-Controller. Input-buffered with
 * flit-denominated credits, round-robin port arbitration, deterministic
 * shortest-path unicast and spanning-tree broadcast forwarding.
 */

#ifndef DIMMLINK_NOC_ROUTER_HH
#define DIMMLINK_NOC_ROUTER_HH

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/stats.hh"
#include "noc/link.hh"
#include "noc/message.hh"
#include "noc/topology.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace noc {

class Router
{
  public:
    /** Port index of the local injection queue. */
    static constexpr int injectPort = -1;

    Router(EventQueue &eq, std::string name, int node,
           const TopologyGraph &graph, unsigned buffer_flits,
           Tick router_latency_ps, stats::Group &sg);

    /** Wire an output toward neighbor @p node. */
    void connectOutput(int neighbor, Link *link, Router *downstream);

    /** Handler invoked when a message is ejected at this node. */
    void setEjectHandler(std::function<void(Message)> h)
    {
        ejectHandler = std::move(h);
    }

    /** Called when buffer space frees; used for injection backpressure. */
    void setSpaceFreedHandler(std::function<void()> h)
    {
        spaceFreedHandler = std::move(h);
    }

    /** Space (in flits) available on the port fed by @p from_node. */
    bool canAccept(unsigned flits, int from_node) const;

    /** Enqueue a message arriving from @p from_node (or injectPort). */
    void accept(Message msg, int from_node);

    /** Attempt to make forwarding progress (idempotent, reentrant-safe
     * via event scheduling). */
    void kick();

    int node() const { return node_; }

  private:
    struct Port
    {
        int fromNode;
        std::deque<Message> q;
        unsigned usedFlits = 0;
        /** Remaining broadcast children for the head message. */
        std::vector<int> headChildren;
        bool headChildrenValid = false;
    };

    struct Output
    {
        Link *link = nullptr;
        Router *downstream = nullptr;
    };

    void scheduleKick(Tick when);
    void forward();
    /** True if the head of @p port made progress. */
    bool tryPort(Port &port);
    /**
     * Send one copy toward @p next_hop; true when it left the port.
     * Messages entering a cyclic topology from the injection port
     * must leave a bubble (one max packet of spare buffer) in the
     * downstream port -- bubble flow control keeps the rings
     * deadlock-free.
     */
    bool sendCopy(const Message &msg, int next_hop,
                  bool from_injection);
    void popHead(Port &port);
    void notifyUpstream();

    EventQueue &eventq;
    std::string name_;
    int node_;
    const TopologyGraph &graph;
    unsigned bufferFlits;
    /** Bubble size for injections on cyclic topologies: one maximal
     * DL packet (17 flits). */
    unsigned bubbleReserve = 17;
    Tick routerLatency;

    std::vector<Port> ports;
    std::map<int, std::size_t> portOfNode;
    std::map<int, Output> outputs;
    std::size_t rrNext = 0;

    bool kickScheduled = false;
    Tick kickAt = 0;
    std::uint64_t kickEventId = 0;

    std::function<void(Message)> ejectHandler;
    std::function<void()> spaceFreedHandler;

    stats::Group &statGroup;
    stats::Scalar &statForwarded;
    stats::Scalar &statEjected;
    stats::Scalar &statBlockedCredits;
    /** Messages dropped for lack of a live route; created lazily so
     * fault-free runs keep the baseline stats JSON shape. */
    stats::Scalar *statDroppedUnroutable = nullptr;

    obs::Tracer *tr = nullptr; ///< Null unless noc tracing is on.
    std::uint32_t trk = 0;
    std::uint16_t nmCreditBlock = 0;
};

} // namespace noc
} // namespace dimmlink

#endif // DIMMLINK_NOC_ROUTER_HH
