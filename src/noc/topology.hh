/**
 * @file
 * Topology construction and static routing for one DL group.
 *
 * The paper's practical prototype connects adjacent DIMMs in a chain
 * ("Half-Ring"); Section VI explores Ring, Mesh, and Torus layouts of
 * the same DIMMs. Routing is deterministic shortest-path (BFS with
 * lowest-index tie-breaking); broadcast follows a per-source BFS
 * spanning tree so each link carries the packet at most once.
 */

#ifndef DIMMLINK_NOC_TOPOLOGY_HH
#define DIMMLINK_NOC_TOPOLOGY_HH

#include <utility>
#include <vector>

#include "common/config.hh"

namespace dimmlink {
namespace noc {

/** The static structure of one group's network. */
class TopologyGraph
{
  public:
    /**
     * Build the link set for @p nodes DIMMs under topology @p kind.
     * Mesh/Torus arrange the group as 2 rows of nodes/2 columns,
     * mirroring two facing rows of DIMM slots on a board.
     */
    TopologyGraph(Topology kind, unsigned nodes);

    unsigned numNodes() const { return n; }
    Topology kind() const { return kind_; }

    /** Undirected adjacency: neighbors of @p node, sorted. */
    const std::vector<int> &neighbors(int node) const
    {
        return adj[static_cast<std::size_t>(node)];
    }

    /** Next hop from @p node toward @p dst (== dst when adjacent). */
    int nextHop(int node, int dst) const
    {
        return nextHop_[static_cast<std::size_t>(node)]
                       [static_cast<std::size_t>(dst)];
    }

    /** Shortest-path hop distance between two nodes. */
    unsigned distance(int a, int b) const
    {
        return dist[static_cast<std::size_t>(a)]
                   [static_cast<std::size_t>(b)];
    }

    /** Children of @p node in the BFS broadcast tree rooted at @p src. */
    const std::vector<int> &broadcastChildren(int src, int node) const
    {
        return bcastTree[static_cast<std::size_t>(src)]
                        [static_cast<std::size_t>(node)];
    }

    /** Maximum shortest-path distance over all node pairs. */
    unsigned diameter() const;

    /** Total number of unidirectional links (2x undirected edges). */
    unsigned numDirectedLinks() const;

    /**
     * True when the routed channel-dependency structure contains
     * rings (Ring, and Torus rows): routers then apply bubble flow
     * control to injected messages to stay deadlock-free.
     */
    bool cyclic() const { return cyclic_; }

  private:
    void addEdge(int a, int b);
    void computeRouting();
    /** Row-first (XY) next hop for Mesh/Torus nodes. */
    int gridNextHop(int node, int dst) const;

    Topology kind_;
    unsigned n;
    bool cyclic_ = false;
    std::vector<std::vector<int>> adj;
    std::vector<std::vector<int>> nextHop_;
    std::vector<std::vector<unsigned>> dist;
    /** bcastTree[src][node] = children to forward to. */
    std::vector<std::vector<std::vector<int>>> bcastTree;
};

} // namespace noc
} // namespace dimmlink

#endif // DIMMLINK_NOC_TOPOLOGY_HH
