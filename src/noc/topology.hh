/**
 * @file
 * Topology construction and static routing for one DL group.
 *
 * The paper's practical prototype connects adjacent DIMMs in a chain
 * ("Half-Ring"); Section VI explores Ring, Mesh, and Torus layouts of
 * the same DIMMs. The link sets come from TopologyBuilder
 * implementations registered by name (see noc/topologies.cc); routing
 * is deterministic shortest-path (BFS with lowest-index tie-breaking)
 * unless the builder installs its own route function (the grids use
 * row-first XY routing). Broadcast follows a per-source spanning tree
 * built from the unicast paths so each link carries the packet at most
 * once.
 */

#ifndef DIMMLINK_NOC_TOPOLOGY_HH
#define DIMMLINK_NOC_TOPOLOGY_HH

#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/factory.hh"

namespace dimmlink {
namespace noc {

class TopologyGraph;

/**
 * One registered topology: populates a TopologyGraph's link set via
 * the graph's addEdge()/markCyclic()/setUnicastRoute() mutators. The
 * registry key is the Topology enum's toString() name, so configs and
 * the enum stay in lockstep.
 */
class TopologyBuilder
{
  public:
    virtual ~TopologyBuilder() = default;

    /** Add the edges of the topology to @p g (g.numNodes() nodes). */
    virtual void build(TopologyGraph &g) const = 0;
};

using TopologyFactory = Factory<TopologyBuilder>;

/** The static structure of one group's network. */
class TopologyGraph
{
  public:
    /**
     * Build the link set for @p nodes DIMMs under topology @p kind,
     * via the TopologyBuilder registered under toString(kind).
     */
    TopologyGraph(Topology kind, unsigned nodes);

    unsigned numNodes() const { return n; }
    Topology kind() const { return kind_; }

    /** distance() result for node pairs with no live path. */
    static constexpr unsigned unreachable = 0xffffffffu;

    /** Undirected adjacency: neighbors of @p node, sorted. */
    const std::vector<int> &neighbors(int node) const
    {
        return adj[static_cast<std::size_t>(node)];
    }

    /** Next hop from @p node toward @p dst (== dst when adjacent);
     * -1 when @p dst is unreachable over the live links. */
    int nextHop(int node, int dst) const
    {
        return nextHop_[static_cast<std::size_t>(node)]
                       [static_cast<std::size_t>(dst)];
    }

    /** Shortest-path hop distance between two nodes over the live
     * links; @ref unreachable when no path survives. */
    unsigned distance(int a, int b) const
    {
        return dist[static_cast<std::size_t>(a)]
                   [static_cast<std::size_t>(b)];
    }

    /** True when a live route from @p a to @p b exists. */
    bool reachable(int a, int b) const
    {
        return distance(a, b) != unreachable;
    }

    /** Children of @p node in the broadcast tree rooted at @p src. */
    const std::vector<int> &broadcastChildren(int src, int node) const
    {
        return bcastTree[static_cast<std::size_t>(src)]
                        [static_cast<std::size_t>(node)];
    }

    /** Maximum shortest-path distance over all node pairs. */
    unsigned diameter() const;

    /** Total number of unidirectional links (2x undirected edges). */
    unsigned numDirectedLinks() const;

    /**
     * True when the routed channel-dependency structure contains
     * rings (Ring, and Torus rows): routers then apply bubble flow
     * control to injected messages to stay deadlock-free.
     */
    bool cyclic() const { return cyclic_; }

    // -- Dynamic link-failure masking (route-around) -------------------

    /**
     * Mark the directed link @p a -> @p b down (or back up) and
     * recompute every routing table and broadcast tree over the
     * surviving links. While any link is masked, routing falls back
     * to BFS over the live directed adjacency (a builder-installed
     * route function such as the grids' XY walk cannot avoid dead
     * links); node pairs with no surviving path get distance()
     * == unreachable and nextHop() == -1 instead of a fatal().
     */
    void setEdgeDown(int a, int b, bool down);

    /** True when the directed link @p a -> @p b is masked down. */
    bool edgeDown(int a, int b) const
    {
        return downEdges_.count({a, b}) != 0;
    }

    /** Number of directed links currently masked down. */
    std::size_t numDownEdges() const { return downEdges_.size(); }

    // -- TopologyBuilder interface ------------------------------------

    /** Add an undirected link (idempotent). Builders only. */
    void addEdge(int a, int b);

    /** Declare that the routed channel structure contains rings. */
    void markCyclic() { cyclic_ = true; }

    /**
     * Install a deterministic next-hop function (node, dst) -> next
     * node; when set, routes follow it instead of BFS. The function
     * must converge to dst within numNodes() hops along every pair.
     */
    void setUnicastRoute(std::function<int(int, int)> route)
    {
        routeFn = std::move(route);
    }

  private:
    void computeRouting();

    Topology kind_;
    unsigned n;
    bool cyclic_ = false;
    std::function<int(int, int)> routeFn;
    std::vector<std::vector<int>> adj;
    /** Directed links masked down by the health layer. */
    std::set<std::pair<int, int>> downEdges_;
    std::vector<std::vector<int>> nextHop_;
    std::vector<std::vector<unsigned>> dist;
    /** bcastTree[src][node] = children to forward to. */
    std::vector<std::vector<std::vector<int>>> bcastTree;
};

} // namespace noc

template <>
struct FactoryTraits<noc::TopologyBuilder>
{
    static constexpr const char *noun = "NoC topology";
};

} // namespace dimmlink

#endif // DIMMLINK_NOC_TOPOLOGY_HH
