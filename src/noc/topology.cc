#include "noc/topology.hh"

#include <algorithm>
#include <queue>

#include "common/log.hh"

namespace dimmlink {
namespace noc {

TopologyGraph::TopologyGraph(Topology kind, unsigned nodes)
    : kind_(kind), n(nodes), adj(nodes)
{
    if (nodes == 0)
        fatal("topology needs at least one node");

    const auto builder =
        TopologyFactory::instance().create(toString(kind));
    builder->build(*this);

    for (auto &list : adj)
        std::sort(list.begin(), list.end());

    computeRouting();
}

void
TopologyGraph::addEdge(int a, int b)
{
    auto &la = adj[static_cast<std::size_t>(a)];
    auto &lb = adj[static_cast<std::size_t>(b)];
    if (std::find(la.begin(), la.end(), b) != la.end())
        return;
    la.push_back(b);
    lb.push_back(a);
}

void
TopologyGraph::setEdgeDown(int a, int b, bool down)
{
    if (down)
        downEdges_.insert({a, b});
    else
        downEdges_.erase({a, b});
    computeRouting();
}

void
TopologyGraph::computeRouting()
{
    const unsigned big = unreachable;
    dist.assign(n, std::vector<unsigned>(n, big));
    nextHop_.assign(n, std::vector<int>(n, -1));
    bcastTree.assign(n, std::vector<std::vector<int>>(n));

    if (routeFn && downEdges_.empty()) {
        // Deterministic builder-provided routing (the grids' XY walk).
        for (unsigned s = 0; s < n; ++s) {
            dist[s][s] = 0;
            for (unsigned d = 0; d < n; ++d) {
                if (s == d)
                    continue;
                // Walk the route to fill nextHop and distance.
                int cur = static_cast<int>(s);
                unsigned hops = 0;
                int first = -1;
                while (cur != static_cast<int>(d)) {
                    const int nxt = routeFn(cur, static_cast<int>(d));
                    if (first == -1)
                        first = nxt;
                    cur = nxt;
                    if (++hops > n)
                        panic("%s routing failed to converge",
                              toString(kind_));
                }
                nextHop_[s][d] = first;
                dist[s][d] = hops;
            }
        }
    } else {
        // BFS shortest paths with lowest-index tie-breaking over the
        // live directed adjacency (a down link masks one direction).
        for (unsigned s = 0; s < n; ++s) {
            std::vector<int> parent(n, -1);
            auto &d = dist[s];
            d[s] = 0;
            std::queue<int> q;
            q.push(static_cast<int>(s));
            while (!q.empty()) {
                const int u = q.front();
                q.pop();
                for (int v : adj[static_cast<std::size_t>(u)]) {
                    if (d[static_cast<std::size_t>(v)] != big)
                        continue;
                    if (edgeDown(u, v))
                        continue;
                    d[static_cast<std::size_t>(v)] =
                        d[static_cast<std::size_t>(u)] + 1;
                    parent[static_cast<std::size_t>(v)] = u;
                    q.push(v);
                }
            }
            for (unsigned v = 0; v < n; ++v) {
                if (v == s)
                    continue;
                if (d[v] == big) {
                    // A statically disconnected topology is a build
                    // error; one cut off by masked link failures is a
                    // runtime condition the fabric routes around via
                    // host forwarding.
                    if (downEdges_.empty())
                        fatal("topology %s with %u nodes is "
                              "disconnected", toString(kind_), n);
                    continue;
                }
                int cur = static_cast<int>(v);
                while (parent[static_cast<std::size_t>(cur)] !=
                       static_cast<int>(s))
                    cur = parent[static_cast<std::size_t>(cur)];
                nextHop_[s][v] = cur;
            }
        }
    }

    // Broadcast trees: the union of the unicast paths from the
    // source to every node, so broadcast copies follow the same
    // (deadlock-managed) channel order as unicast traffic. Nodes the
    // source cannot reach are simply absent from its tree.
    for (unsigned s = 0; s < n; ++s) {
        for (unsigned v = 0; v < n; ++v) {
            if (v == s || dist[s][v] == big)
                continue;
            int cur = static_cast<int>(s);
            while (cur != static_cast<int>(v)) {
                const int nxt = nextHop_[static_cast<std::size_t>(
                    cur)][v];
                auto &children =
                    bcastTree[s][static_cast<std::size_t>(cur)];
                if (std::find(children.begin(), children.end(),
                              nxt) == children.end())
                    children.push_back(nxt);
                cur = nxt;
            }
        }
        for (auto &children : bcastTree[s])
            std::sort(children.begin(), children.end());
    }
}

unsigned
TopologyGraph::diameter() const
{
    unsigned d = 0;
    for (unsigned a = 0; a < n; ++a)
        for (unsigned b = 0; b < n; ++b)
            if (dist[a][b] != unreachable)
                d = std::max(d, dist[a][b]);
    return d;
}

unsigned
TopologyGraph::numDirectedLinks() const
{
    unsigned cnt = 0;
    for (const auto &list : adj)
        cnt += static_cast<unsigned>(list.size());
    return cnt;
}

} // namespace noc
} // namespace dimmlink
