#include "noc/topology.hh"

#include <algorithm>
#include <queue>

#include "common/log.hh"

namespace dimmlink {
namespace noc {

TopologyGraph::TopologyGraph(Topology kind, unsigned nodes)
    : kind_(kind), n(nodes), adj(nodes)
{
    if (nodes == 0)
        fatal("topology needs at least one node");

    switch (kind) {
      case Topology::HalfRing:
        for (unsigned i = 0; i + 1 < n; ++i)
            addEdge(static_cast<int>(i), static_cast<int>(i + 1));
        break;

      case Topology::Ring:
        for (unsigned i = 0; i + 1 < n; ++i)
            addEdge(static_cast<int>(i), static_cast<int>(i + 1));
        if (n > 2) {
            addEdge(static_cast<int>(n - 1), 0);
            cyclic_ = true;
        }
        break;

      case Topology::Mesh:
      case Topology::Torus: {
        // Two facing rows of DIMM slots: 2 x (n/2) grid. Groups of
        // one or two nodes degrade to a chain.
        if (n <= 2) {
            for (unsigned i = 0; i + 1 < n; ++i)
                addEdge(static_cast<int>(i), static_cast<int>(i + 1));
            break;
        }
        const unsigned cols = n / 2;
        auto id = [cols](unsigned r, unsigned c) {
            return static_cast<int>(r * cols + c);
        };
        for (unsigned r = 0; r < 2; ++r)
            for (unsigned c = 0; c + 1 < cols; ++c)
                addEdge(id(r, c), id(r, c + 1));
        for (unsigned c = 0; c < cols; ++c)
            addEdge(id(0, c), id(1, c));
        if (kind == Topology::Torus && cols > 2) {
            // Row wrap-around; the column wrap would duplicate the
            // existing 2-row vertical edges.
            for (unsigned r = 0; r < 2; ++r)
                addEdge(id(r, 0), id(r, cols - 1));
            cyclic_ = true;
        }
        break;
      }
    }

    for (auto &list : adj)
        std::sort(list.begin(), list.end());

    computeRouting();
}

void
TopologyGraph::addEdge(int a, int b)
{
    auto &la = adj[static_cast<std::size_t>(a)];
    auto &lb = adj[static_cast<std::size_t>(b)];
    if (std::find(la.begin(), la.end(), b) != la.end())
        return;
    la.push_back(b);
    lb.push_back(a);
}

int
TopologyGraph::gridNextHop(int node, int dst) const
{
    // Row-first ("XY") routing on the 2 x cols grid: move along the
    // own row (with wrap on a torus) until the destination column,
    // then take the single column hop. Row channels are the only
    // rings, and packets never turn back into a row, which keeps the
    // channel-dependency graph deadlock-free with bubble injection.
    const unsigned cols = n / 2;
    const unsigned row = static_cast<unsigned>(node) / cols;
    const unsigned col = static_cast<unsigned>(node) % cols;
    const unsigned drow = static_cast<unsigned>(dst) / cols;
    const unsigned dcol = static_cast<unsigned>(dst) % cols;
    auto id = [cols](unsigned r, unsigned c) {
        return static_cast<int>(r * cols + c);
    };

    if (col == dcol)
        return id(drow, dcol); // the column hop (or already there)

    // Choose the shorter row direction (wrap allowed on torus).
    const unsigned right = (dcol + cols - col) % cols;
    const unsigned left = (col + cols - dcol) % cols;
    bool go_right;
    if (kind_ == Topology::Torus && cyclic_) {
        go_right = right <= left;
    } else {
        go_right = dcol > col;
    }
    unsigned next_col;
    if (go_right)
        next_col = (col + 1) % cols;
    else
        next_col = (col + cols - 1) % cols;
    return id(row, next_col);
}

void
TopologyGraph::computeRouting()
{
    const unsigned big = 0xffffffff;
    dist.assign(n, std::vector<unsigned>(n, big));
    nextHop_.assign(n, std::vector<int>(n, -1));
    bcastTree.assign(n, std::vector<std::vector<int>>(n));

    const bool grid = (kind_ == Topology::Mesh ||
                       kind_ == Topology::Torus) && n > 2;

    if (grid) {
        // Deterministic row-first routing.
        for (unsigned s = 0; s < n; ++s) {
            dist[s][s] = 0;
            for (unsigned d = 0; d < n; ++d) {
                if (s == d)
                    continue;
                // Walk the XY path to fill nextHop and distance.
                int cur = static_cast<int>(s);
                unsigned hops = 0;
                int first = -1;
                while (cur != static_cast<int>(d)) {
                    const int nxt = gridNextHop(cur, static_cast<int>(d));
                    if (first == -1)
                        first = nxt;
                    cur = nxt;
                    if (++hops > n)
                        panic("XY routing failed to converge");
                }
                nextHop_[s][d] = first;
                dist[s][d] = hops;
            }
        }
    } else {
        // BFS shortest paths with lowest-index tie-breaking.
        for (unsigned s = 0; s < n; ++s) {
            std::vector<int> parent(n, -1);
            auto &d = dist[s];
            d[s] = 0;
            std::queue<int> q;
            q.push(static_cast<int>(s));
            while (!q.empty()) {
                const int u = q.front();
                q.pop();
                for (int v : adj[static_cast<std::size_t>(u)]) {
                    if (d[static_cast<std::size_t>(v)] != big)
                        continue;
                    d[static_cast<std::size_t>(v)] =
                        d[static_cast<std::size_t>(u)] + 1;
                    parent[static_cast<std::size_t>(v)] = u;
                    q.push(v);
                }
            }
            for (unsigned v = 0; v < n; ++v) {
                if (v == s)
                    continue;
                if (d[v] == big)
                    fatal("topology %s with %u nodes is disconnected",
                          toString(kind_), n);
                int cur = static_cast<int>(v);
                while (parent[static_cast<std::size_t>(cur)] !=
                       static_cast<int>(s))
                    cur = parent[static_cast<std::size_t>(cur)];
                nextHop_[s][v] = cur;
            }
        }
    }

    // Broadcast trees: the union of the unicast paths from the
    // source to every node, so broadcast copies follow the same
    // (deadlock-managed) channel order as unicast traffic.
    for (unsigned s = 0; s < n; ++s) {
        for (unsigned v = 0; v < n; ++v) {
            if (v == s)
                continue;
            int cur = static_cast<int>(s);
            while (cur != static_cast<int>(v)) {
                const int nxt = nextHop_[static_cast<std::size_t>(
                    cur)][v];
                auto &children =
                    bcastTree[s][static_cast<std::size_t>(cur)];
                if (std::find(children.begin(), children.end(),
                              nxt) == children.end())
                    children.push_back(nxt);
                cur = nxt;
            }
        }
        for (auto &children : bcastTree[s])
            std::sort(children.begin(), children.end());
    }
}

unsigned
TopologyGraph::diameter() const
{
    unsigned d = 0;
    for (unsigned a = 0; a < n; ++a)
        for (unsigned b = 0; b < n; ++b)
            d = std::max(d, dist[a][b]);
    return d;
}

unsigned
TopologyGraph::numDirectedLinks() const
{
    unsigned cnt = 0;
    for (const auto &list : adj)
        cnt += static_cast<unsigned>(list.size());
    return cnt;
}

} // namespace noc
} // namespace dimmlink
