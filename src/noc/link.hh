/**
 * @file
 * A unidirectional SerDes link of the DL-Bridge. Serializes one
 * message at a time at the configured bandwidth, then presents it to
 * the downstream router after the wire latency.
 */

#ifndef DIMMLINK_NOC_LINK_HH
#define DIMMLINK_NOC_LINK_HH

#include <functional>
#include <memory>

#include "common/stats.hh"
#include "noc/message.hh"
#include "sim/event_queue.hh"

namespace dimmlink {

namespace fault {
class FaultModel;
} // namespace fault

namespace obs {
class Tracer;
} // namespace obs

namespace noc {

class Link
{
  public:
    /**
     * @param gbps        per-direction bandwidth (GRS: 25 GB/s).
     * @param wire_ps     SerDes + PCB trace latency per traversal.
     * @param flit_bits   flit width (128 in the DL protocol).
     */
    Link(EventQueue &eq, std::string name, double gbps, Tick wire_ps,
         unsigned flit_bits, stats::Group &sg);
    ~Link();

    /**
     * Attach a fault model; every subsequent transmit() passes
     * through it. nullptr detaches. The fault stats scalars are
     * created lazily here so unfaulted runs keep the baseline stats
     * JSON shape.
     */
    void setFaultModel(std::unique_ptr<fault::FaultModel> m);

    /** Earliest tick a new transmission may begin. */
    Tick freeAt() const { return busyUntil; }

    /** Ticks to push @p flits flits through the serializer. */
    Tick serializationTime(unsigned flits) const;

    /**
     * Begin transmitting at max(now, freeAt()). @p arrive fires at the
     * downstream end after serialization + wire latency.
     * @return the tick at which the tail flit arrives downstream.
     */
    Tick transmit(Message msg, std::function<void(Message)> arrive);

    const std::string &name() const { return name_; }
    double bandwidthGBps() const { return gbps_; }

  private:
    EventQueue &eventq;
    std::string name_;
    double gbps_;
    Tick wireLatency;
    unsigned flitBytes;
    Tick busyUntil = 0;

    stats::Group &statGroup;
    stats::Scalar &statFlits;
    stats::Scalar &statMessages;
    stats::Scalar &statBusyPs;

    std::unique_ptr<fault::FaultModel> faultModel;
    stats::Scalar *statFaultCorrupted = nullptr;
    stats::Scalar *statFaultStalledPs = nullptr;
    stats::Scalar *statFaultDeratedPs = nullptr;

    obs::Tracer *tr = nullptr; ///< Null unless noc tracing is on.
    std::uint32_t trk = 0;
    std::uint16_t nmTx = 0, nmOutage = 0, nmCorrupt = 0;
};

} // namespace noc
} // namespace dimmlink

#endif // DIMMLINK_NOC_LINK_HH
