#include "noc/network.hh"

#include "common/log.hh"
#include "fault/fault_model.hh"

namespace dimmlink {
namespace noc {

Network::Network(EventQueue &eq, std::string name, const LinkConfig &cfg_,
                 unsigned nodes, stats::Registry &reg,
                 const FaultConfig *faults)
    : name_(std::move(name)),
      cfg(cfg_),
      topo(cfg_.topology, nodes),
      registry(reg),
      statInjected(reg.group(name_).scalar("injected")),
      statInjectBlocked(reg.group(name_).scalar("injectBlocked")),
      statLatencyPs(reg.group(name_).distribution("latencyPs")),
      eventq(eq)
{
    routers.reserve(nodes);
    for (unsigned i = 0; i < nodes; ++i) {
        auto &sg = reg.group(name_ + ".router" + std::to_string(i));
        routers.push_back(std::make_unique<Router>(
            eq, name_ + ".router" + std::to_string(i),
            static_cast<int>(i), topo, cfg.bufferFlits,
            cfg.routerLatencyPs, sg));
    }
    // One unidirectional link per (node, neighbor) ordered pair.
    for (unsigned i = 0; i < nodes; ++i) {
        for (int nb : topo.neighbors(static_cast<int>(i))) {
            const std::string lname = name_ + ".link" +
                std::to_string(i) + "to" + std::to_string(nb);
            auto &sg = reg.group(lname);
            links.push_back(std::make_unique<Link>(
                eq, lname, cfg.linkGBps, cfg.wireLatencyPs,
                cfg.flitBits, sg));
            if (faults)
                links.back()->setFaultModel(
                    fault::makeFaultModel(*faults, lname));
            linkOf[{static_cast<int>(i), nb}] = links.back().get();
            routers[i]->connectOutput(
                nb, links.back().get(),
                routers[static_cast<std::size_t>(nb)].get());
        }
    }
}

bool
Network::tryInject(Message msg)
{
    if (msg.src < 0 ||
        static_cast<unsigned>(msg.src) >= topo.numNodes())
        panic("%s: inject from bad node %d", name_.c_str(), msg.src);
    Router &r = *routers[static_cast<std::size_t>(msg.src)];
    if (!r.canAccept(msg.flits, Router::injectPort)) {
        ++statInjectBlocked;
        return false;
    }
    msg.injectedAt = eventq.now();
    ++statInjected;
    // Wrap the deliver callback to sample network latency stats.
    auto inner = std::move(msg.deliver);
    msg.deliver = [this, inner = std::move(inner),
                   injected = msg.injectedAt](int node) {
        statLatencyPs.sample(
            static_cast<double>(eventq.now() - injected));
        if (inner)
            inner(node);
    };
    r.accept(std::move(msg), Router::injectPort);
    return true;
}

void
Network::setRetryHandler(int node, std::function<void()> h)
{
    routers[static_cast<std::size_t>(node)]->setSpaceFreedHandler(
        std::move(h));
}

void
Network::setEjectHandler(int node, std::function<void(Message)> h)
{
    routers[static_cast<std::size_t>(node)]->setEjectHandler(
        std::move(h));
}

double
Network::totalLinkBusyPs() const
{
    double sum = 0;
    for (const auto &l : links)
        sum += registry.scalar(l->name() + ".busyPs");
    return sum;
}

std::uint64_t
Network::messagesDelivered() const
{
    double sum = 0;
    for (unsigned i = 0; i < topo.numNodes(); ++i)
        sum += registry.scalar(name_ + ".router" + std::to_string(i)
                               + ".ejected");
    return static_cast<std::uint64_t>(sum);
}

} // namespace noc
} // namespace dimmlink
