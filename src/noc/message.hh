/**
 * @file
 * The unit the DL network routes: a packetized message measured in
 * 128-bit flits. The interconnect model is virtual cut-through at
 * packet granularity with flit-denominated credit flow control — the
 * modeling granularity BookSim provides to MultiPIM in the paper's
 * methodology.
 */

#ifndef DIMMLINK_NOC_MESSAGE_HH
#define DIMMLINK_NOC_MESSAGE_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace dimmlink {
namespace noc {

/** A routed message. Payload travels by closure in @ref deliver. */
struct Message
{
    /** Source node index within the network (not global DIMM id). */
    int src = 0;
    /** Destination node; ignored when @ref broadcast is set. */
    int dst = 0;
    /** Serialization length in flits (header/tail folded in). */
    unsigned flits = 1;
    /** Broadcast messages are forwarded along the source's BFS tree
     * until every node has accepted a copy (Fig. 5-c). */
    bool broadcast = false;
    /** Unique id for tracing/debug. */
    std::uint64_t id = 0;
    /** Tick at which the message entered the network (set by inject). */
    Tick injectedAt = 0;
    /** Number of link traversals so far (hop count statistic). */
    unsigned hops = 0;
    /**
     * Called once per destination when the message is ejected there.
     * The int argument is the ejecting node index.
     */
    std::function<void(int)> deliver;
};

} // namespace noc
} // namespace dimmlink

#endif // DIMMLINK_NOC_MESSAGE_HH
