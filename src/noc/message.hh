/**
 * @file
 * The unit the DL network routes: a packetized message measured in
 * 128-bit flits. The interconnect model is virtual cut-through at
 * packet granularity with flit-denominated credit flow control — the
 * modeling granularity BookSim provides to MultiPIM in the paper's
 * methodology.
 */

#ifndef DIMMLINK_NOC_MESSAGE_HH
#define DIMMLINK_NOC_MESSAGE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hh"

namespace dimmlink {
namespace noc {

/** A routed message. Payload travels by closure in @ref deliver. */
struct Message
{
    /** Source node index within the network (not global DIMM id). */
    int src = 0;
    /** Destination node; ignored when @ref broadcast is set. */
    int dst = 0;
    /** Serialization length in flits (header/tail folded in). */
    unsigned flits = 1;
    /** Broadcast messages are forwarded along the source's BFS tree
     * until every node has accepted a copy (Fig. 5-c). */
    bool broadcast = false;
    /** Unique id for tracing/debug. */
    std::uint64_t id = 0;
    /** Tick at which the message entered the network (set by inject). */
    Tick injectedAt = 0;
    /** Number of link traversals so far (hop count statistic). */
    unsigned hops = 0;
    /**
     * The encoded DL wire image, when the sender models it (reliable
     * DLL transport). Shared so copies made for broadcast fan-out or
     * deferred delivery alias one buffer; fault models flip bits in
     * it, and the far end decodes it through the CRC.
     */
    std::shared_ptr<std::vector<std::uint8_t>> wire;
    /**
     * A fault model damaged this message in flight. For messages with
     * a @ref wire image the damage is also physically present in the
     * bytes; for flit-count-only messages this flag is the only
     * record of it.
     */
    bool corrupted = false;
    /**
     * Called once per destination when the message is ejected there.
     * The int argument is the ejecting node index.
     */
    std::function<void(int)> deliver;
    /**
     * Called when a router drops the message because its destination
     * became unreachable (a link went down mid-flight and the
     * recomputed tables have no route). Senders with their own
     * recovery (the DLL retry timeout) leave this unset; senders that
     * would otherwise lose a completion (the proxy forward-request
     * note) install a fallback here.
     */
    std::function<void()> onDropped;
};

} // namespace noc
} // namespace dimmlink

#endif // DIMMLINK_NOC_MESSAGE_HH
