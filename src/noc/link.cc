#include "noc/link.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/types.hh"
#include "fault/fault_model.hh"
#include "obs/tracer.hh"

namespace dimmlink {
namespace noc {

Link::Link(EventQueue &eq, std::string name, double gbps, Tick wire_ps,
           unsigned flit_bits, stats::Group &sg)
    : eventq(eq),
      name_(std::move(name)),
      gbps_(gbps),
      wireLatency(wire_ps),
      flitBytes(flit_bits / 8),
      statGroup(sg),
      statFlits(sg.scalar("flits")),
      statMessages(sg.scalar("messages")),
      statBusyPs(sg.scalar("busyPs"))
{
    if (gbps <= 0)
        fatal("link %s: non-positive bandwidth", name_.c_str());
    if (auto *t = eq.tracer(); t && t->enabled(obs::CatNoc)) {
        tr = t;
        trk = t->track(name_, obs::CatNoc);
        nmTx = t->intern("tx");
        nmOutage = t->intern("outage");
        nmCorrupt = t->intern("corrupt");
    }
}

Link::~Link() = default;

void
Link::setFaultModel(std::unique_ptr<fault::FaultModel> m)
{
    faultModel = std::move(m);
    if (faultModel && !statFaultCorrupted) {
        statFaultCorrupted = &statGroup.scalar("faultCorrupted");
        statFaultStalledPs = &statGroup.scalar("faultStalledPs");
        statFaultDeratedPs = &statGroup.scalar("faultDeratedPs");
    }
}

Tick
Link::serializationTime(unsigned flits) const
{
    return serializationTicks(
        static_cast<std::uint64_t>(flits) * flitBytes, gbps_);
}

Tick
Link::transmit(Message msg, std::function<void(Message)> arrive)
{
    Tick start = std::max(eventq.now(), busyUntil);
    Tick ser = serializationTime(msg.flits);
    Tick stall_begin = 0, stall_ps = 0;
    bool corrupt_hit = false;
    if (faultModel) {
        const auto bits = static_cast<unsigned>(
            msg.wire && !msg.wire->empty()
                ? msg.wire->size() * 8
                : static_cast<std::size_t>(msg.flits) * flitBytes * 8);
        const auto effect = faultModel->onTransmit(start, bits, msg);
        if (effect.stallPs > 0) {
            stall_begin = start;
            stall_ps = effect.stallPs;
            start += effect.stallPs;
            *statFaultStalledPs += static_cast<double>(effect.stallPs);
        }
        if (effect.serScale != 1.0) {
            const auto derated = static_cast<Tick>(
                static_cast<double>(ser) * effect.serScale + 0.5);
            *statFaultDeratedPs += static_cast<double>(derated - ser);
            ser = derated;
        }
        if (effect.corrupted) {
            msg.corrupted = true;
            corrupt_hit = true;
            ++*statFaultCorrupted;
        }
    }
    if (tr) {
        tr->complete(trk, nmTx, start, ser);
        if (stall_ps > 0)
            tr->complete(trk, nmOutage, stall_begin, stall_ps);
        if (corrupt_hit)
            tr->instant(trk, nmCorrupt, start, msg.flits);
    }
    busyUntil = start + ser;
    statFlits += msg.flits;
    ++statMessages;
    statBusyPs += static_cast<double>(ser);
    const Tick arrival = busyUntil + wireLatency;
    ++msg.hops;
    eventq.schedule(arrival,
                    [cb = std::move(arrive), m = std::move(msg)]() mutable {
                        cb(std::move(m));
                    },
                    EventPriority::Delivery);
    return arrival;
}

} // namespace noc
} // namespace dimmlink
