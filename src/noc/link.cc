#include "noc/link.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/types.hh"

namespace dimmlink {
namespace noc {

Link::Link(EventQueue &eq, std::string name, double gbps, Tick wire_ps,
           unsigned flit_bits, stats::Group &sg)
    : eventq(eq),
      name_(std::move(name)),
      gbps_(gbps),
      wireLatency(wire_ps),
      flitBytes(flit_bits / 8),
      statFlits(sg.scalar("flits")),
      statMessages(sg.scalar("messages")),
      statBusyPs(sg.scalar("busyPs"))
{
    if (gbps <= 0)
        fatal("link %s: non-positive bandwidth", name_.c_str());
}

Tick
Link::serializationTime(unsigned flits) const
{
    return serializationTicks(
        static_cast<std::uint64_t>(flits) * flitBytes, gbps_);
}

Tick
Link::transmit(Message msg, std::function<void(Message)> arrive)
{
    const Tick start = std::max(eventq.now(), busyUntil);
    const Tick ser = serializationTime(msg.flits);
    busyUntil = start + ser;
    statFlits += msg.flits;
    ++statMessages;
    statBusyPs += static_cast<double>(ser);
    const Tick arrival = busyUntil + wireLatency;
    ++msg.hops;
    eventq.schedule(arrival,
                    [cb = std::move(arrive), m = std::move(msg)]() mutable {
                        cb(std::move(m));
                    },
                    EventPriority::Delivery);
    return arrival;
}

} // namespace noc
} // namespace dimmlink
