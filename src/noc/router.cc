#include "noc/router.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/tracer.hh"

namespace dimmlink {
namespace noc {

Router::Router(EventQueue &eq, std::string name, int node,
               const TopologyGraph &graph_, unsigned buffer_flits,
               Tick router_latency_ps, stats::Group &sg)
    : eventq(eq),
      name_(std::move(name)),
      node_(node),
      graph(graph_),
      bufferFlits(buffer_flits),
      routerLatency(router_latency_ps),
      statGroup(sg),
      statForwarded(sg.scalar("forwarded")),
      statEjected(sg.scalar("ejected")),
      statBlockedCredits(sg.scalar("blockedOnCredits"))
{
    if (auto *t = eq.tracer(); t && t->enabled(obs::CatNoc)) {
        tr = t;
        trk = t->track(name_, obs::CatNoc);
        nmCreditBlock = t->intern("creditBlock");
    }
    // One input port per incoming neighbor link plus the local
    // injection port.
    ports.push_back(Port{injectPort, {}, 0, {}, false});
    portOfNode[injectPort] = 0;
    for (int nb : graph.neighbors(node)) {
        portOfNode[nb] = ports.size();
        ports.push_back(Port{nb, {}, 0, {}, false});
    }
}

void
Router::connectOutput(int neighbor, Link *link, Router *downstream)
{
    outputs[neighbor] = Output{link, downstream};
}

bool
Router::canAccept(unsigned flits, int from_node) const
{
    const auto it = portOfNode.find(from_node);
    if (it == portOfNode.end())
        panic("router %s: no port for node %d", name_.c_str(),
              from_node);
    const Port &p = ports[it->second];
    return p.usedFlits + flits <= bufferFlits;
}

void
Router::accept(Message msg, int from_node)
{
    Port &p = ports[portOfNode.at(from_node)];
    if (p.usedFlits + msg.flits > bufferFlits)
        panic("router %s: port overflow from node %d (credits were "
              "not reserved)", name_.c_str(), from_node);
    p.usedFlits += msg.flits;
    p.q.push_back(std::move(msg));
    scheduleKick(eventq.now() + routerLatency);
}

void
Router::scheduleKick(Tick when)
{
    if (when < eventq.now())
        when = eventq.now();
    if (kickScheduled && kickAt <= when)
        return;
    if (kickScheduled)
        eventq.deschedule(kickEventId);
    kickScheduled = true;
    kickAt = when;
    kickEventId = eventq.schedule(when,
                                  [this] {
                                      kickScheduled = false;
                                      forward();
                                  },
                                  EventPriority::Control);
}

void
Router::kick()
{
    scheduleKick(eventq.now());
}

bool
Router::sendCopy(const Message &msg, int next_hop,
                 bool from_injection)
{
    auto it = outputs.find(next_hop);
    if (it == outputs.end())
        panic("router %s: no output toward node %d", name_.c_str(),
              next_hop);
    Output &out = it->second;
    if (out.link->freeAt() > eventq.now()) {
        // Link busy: retry when it frees up.
        scheduleKick(out.link->freeAt());
        return false;
    }
    // Bubble flow control: injected messages on cyclic topologies
    // must leave one max-packet bubble downstream.
    const unsigned reserve =
        (from_injection && graph.cyclic()) ? bubbleReserve : 0;
    if (!out.downstream->canAccept(msg.flits + reserve, node_)) {
        // Out of credits: the downstream router kicks us on release.
        ++statBlockedCredits;
        if (tr)
            tr->instant(trk, nmCreditBlock, eventq.now(), msg.flits);
        return false;
    }
    // Reserve the downstream buffer space now (credit leaves with the
    // flits) and hand the message to the link.
    Router *down = out.downstream;
    const int from = node_;
    Port &dport = down->ports[down->portOfNode.at(from)];
    dport.usedFlits += msg.flits;
    Message copy = msg;
    out.link->transmit(std::move(copy), [down, from](Message m) {
        // Space was pre-reserved; enqueue without re-reserving.
        Port &p = down->ports[down->portOfNode.at(from)];
        p.q.push_back(std::move(m));
        down->scheduleKick(down->eventq.now() + down->routerLatency);
    });
    ++statForwarded;
    return true;
}

void
Router::popHead(Port &port)
{
    const unsigned flits = port.q.front().flits;
    port.q.pop_front();
    if (port.usedFlits < flits)
        panic("router %s: flit accounting underflow", name_.c_str());
    port.usedFlits -= flits;
    port.headChildrenValid = false;
    port.headChildren.clear();
    notifyUpstream();
}

void
Router::notifyUpstream()
{
    // Freed credits: wake every router with a link into us (the
    // bridge is bidirectional, so those are exactly our neighbors),
    // plus the local injector.
    for (int nb : graph.neighbors(node_)) {
        auto it = outputs.find(nb);
        if (it != outputs.end() && it->second.downstream)
            it->second.downstream->kick();
    }
    if (spaceFreedHandler)
        spaceFreedHandler();
}

bool
Router::tryPort(Port &port)
{
    if (port.q.empty())
        return false;
    Message &m = port.q.front();

    if (m.broadcast) {
        if (!port.headChildrenValid) {
            port.headChildren = graph.broadcastChildren(m.src, node_);
            port.headChildrenValid = true;
        }
        // Forward to each remaining tree child; eject once all copies
        // have left.
        while (!port.headChildren.empty()) {
            const int child = port.headChildren.back();
            if (!sendCopy(m, child, port.fromNode == injectPort))
                return false;
            port.headChildren.pop_back();
        }
        Message msg = std::move(m);
        popHead(port);
        ++statEjected;
        if (msg.deliver)
            msg.deliver(node_);
        else if (ejectHandler)
            ejectHandler(std::move(msg));
        return true;
    }

    if (m.dst == node_) {
        Message msg = std::move(m);
        popHead(port);
        ++statEjected;
        if (msg.deliver)
            msg.deliver(node_);
        else if (ejectHandler)
            ejectHandler(std::move(msg));
        return true;
    }

    const int next = graph.nextHop(node_, m.dst);
    if (next == -1) {
        // The destination became unreachable while the message was in
        // flight (a link failed and the tables recomputed without a
        // route). Drop it: DLL-protected traffic recovers through the
        // sender's retry timeout and the exhaustion policy; senders
        // without retries install onDropped as their fallback.
        if (statDroppedUnroutable == nullptr)
            statDroppedUnroutable =
                &statGroup.scalar("droppedUnroutable");
        ++*statDroppedUnroutable;
        Message msg = std::move(m);
        popHead(port);
        if (msg.onDropped)
            msg.onDropped();
        return true;
    }
    if (!sendCopy(m, next, port.fromNode == injectPort))
        return false;
    popHead(port);
    return true;
}

void
Router::forward()
{
    // One arbitration pass: every port may move its head message.
    // Round-robin starting point for fairness under contention.
    const std::size_t n = ports.size();
    bool any_left = false;
    for (std::size_t i = 0; i < n; ++i) {
        Port &port = ports[(rrNext + i) % n];
        tryPort(port);
        if (!port.q.empty())
            any_left = true;
    }
    rrNext = (rrNext + 1) % n;
    if (any_left) {
        // Blocked heads are re-kicked by link-free or credit-release
        // callbacks; a conservative periodic retry guards rare cases.
        scheduleKick(eventq.now() + routerLatency);
    }
}

} // namespace noc
} // namespace dimmlink
