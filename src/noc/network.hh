/**
 * @file
 * One DL group's interconnect: the TopologyGraph, a Router per DIMM
 * and a pair of unidirectional Links per adjacent DIMM pair, assembled
 * and exposed through a small injection/ejection API.
 */

#ifndef DIMMLINK_NOC_NETWORK_HH
#define DIMMLINK_NOC_NETWORK_HH

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "noc/link.hh"
#include "noc/message.hh"
#include "noc/router.hh"
#include "noc/topology.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace noc {

class Network
{
  public:
    /**
     * @param faults  when non-null, each link gets the configured
     *                fault model (seeded from its own name) attached
     *                at construction.
     */
    Network(EventQueue &eq, std::string name, const LinkConfig &cfg,
            unsigned nodes, stats::Registry &registry,
            const FaultConfig *faults = nullptr);

    /**
     * Try to inject @p msg at node msg.src. @return false when the
     * injection port is out of buffer space; the caller should retry
     * from its retry handler.
     */
    bool tryInject(Message msg);

    /** Called whenever node @p node frees injection space. */
    void setRetryHandler(int node, std::function<void()> h);

    /** Default ejection handler for node (used when a message has no
     * deliver callback of its own). */
    void setEjectHandler(int node, std::function<void(Message)> h);

    const TopologyGraph &graph() const { return topo; }
    unsigned numNodes() const { return topo.numNodes(); }

    /**
     * Mask the directed link @p a -> @p b down (or up) and recompute
     * the group's routing tables and broadcast trees in place; every
     * router sees the new tables on its next forwarding decision.
     */
    void setLinkDown(int a, int b, bool down)
    {
        topo.setEdgeDown(a, b, down);
    }

    /** The physical link driving @p a -> @p b (null when the pair is
     * not adjacent). Health probes transmit on it directly. */
    Link *linkBetween(int a, int b) const
    {
        const auto it = linkOf.find({a, b});
        return it == linkOf.end() ? nullptr : it->second;
    }

    /** Aggregate statistics for reporting. */
    double totalLinkBusyPs() const;
    std::uint64_t messagesDelivered() const;

  private:
    std::string name_;
    LinkConfig cfg;
    TopologyGraph topo;
    std::vector<std::unique_ptr<Router>> routers;
    std::vector<std::unique_ptr<Link>> links;
    std::map<std::pair<int, int>, Link *> linkOf;
    stats::Registry &registry;
    stats::Scalar &statInjected;
    stats::Scalar &statInjectBlocked;
    stats::Distribution &statLatencyPs;
    EventQueue &eventq;
};

} // namespace noc
} // namespace dimmlink

#endif // DIMMLINK_NOC_NETWORK_HH
