#include "proto/codec.hh"

namespace dimmlink {
namespace proto {

namespace {

Packet
base(std::uint8_t src, std::uint8_t dst, DlCommand cmd, Addr addr,
     std::uint8_t tag, unsigned bytes)
{
    Packet p;
    p.src = src & 0x3f;
    p.dst = dst & 0x3f;
    p.cmd = cmd;
    p.addr = addr & ((1ull << HeaderLayout::addrBits) - 1);
    p.tag = tag & 0x3f;
    p.payload.assign(bytes, 0);
    return p;
}

} // namespace

Packet
Codec::makeReadReq(std::uint8_t src, std::uint8_t dst, Addr addr,
                   std::uint8_t tag)
{
    return base(src, dst, DlCommand::ReadReq, addr, tag, 0);
}

Packet
Codec::makeReadResp(std::uint8_t src, std::uint8_t dst, Addr addr,
                    std::uint8_t tag, unsigned bytes)
{
    return base(src, dst, DlCommand::ReadResp, addr, tag, bytes);
}

Packet
Codec::makeWriteReq(std::uint8_t src, std::uint8_t dst, Addr addr,
                    std::uint8_t tag, unsigned bytes)
{
    return base(src, dst, DlCommand::WriteReq, addr, tag, bytes);
}

Packet
Codec::makeWriteAck(std::uint8_t src, std::uint8_t dst, Addr addr,
                    std::uint8_t tag)
{
    return base(src, dst, DlCommand::WriteAck, addr, tag, 0);
}

Packet
Codec::makeBroadcast(std::uint8_t src, unsigned bytes, std::uint8_t tag)
{
    return base(src, 0, DlCommand::Broadcast, 0, tag, bytes);
}

Packet
Codec::makeSyncMsg(std::uint8_t src, std::uint8_t dst, std::uint8_t tag)
{
    return base(src, dst, DlCommand::SyncMsg, 0, tag, 0);
}

std::vector<unsigned>
Codec::segment(std::uint64_t bytes)
{
    std::vector<unsigned> sizes;
    while (bytes > maxPayloadBytes) {
        sizes.push_back(maxPayloadBytes);
        bytes -= maxPayloadBytes;
    }
    if (bytes > 0 || sizes.empty())
        sizes.push_back(static_cast<unsigned>(bytes));
    return sizes;
}

} // namespace proto
} // namespace dimmlink
