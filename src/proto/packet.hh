/**
 * @file
 * The DIMM-Link packet of Fig. 3: a 64-bit header (SRC, DST, CMD,
 * ADDR, TAG, LEN), an optional payload, and a tail carrying a 32-bit
 * CRC plus the 32-bit DLL field (ack/retry sequence + credits). The
 * wire order is header, payload (flit-padded), then the tail — the
 * CRC is computed over everything else, including the DLL word, so a
 * flip confined to the sequence number cannot masquerade as a valid
 * packet. The packet is sliced into 128-bit flits; header and tail
 * together occupy exactly one flit, so a zero-payload packet is a
 * single flit and a maximal packet is 1 + 256/16 = 17 flits (within
 * the paper's 32-flit bound; LEN is the 5-bit payload flit count).
 */

#ifndef DIMMLINK_PROTO_PACKET_HH
#define DIMMLINK_PROTO_PACKET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dimmlink {
namespace proto {

/** 4-bit CMD field values (the Function Layer's DL functions). */
enum class DlCommand : std::uint8_t {
    ReadReq = 0,   ///< Remote memory read request (no payload).
    ReadResp = 1,  ///< Read-return data.
    WriteReq = 2,  ///< Remote memory write (payload = data).
    WriteAck = 3,  ///< Write completion acknowledgement.
    Broadcast = 4, ///< Explicit-API broadcast data.
    SyncMsg = 5,   ///< Synchronization message (barriers/locks).
    FwdReq = 6,    ///< CPU-forwarding registration (polling proxy).
    DllAck = 7,    ///< Data-link-layer ACK for retry control.
    DllNack = 8,   ///< CRC failure: request retransmission.
};

const char *toString(DlCommand c);

/** Field widths of the 64-bit header. */
struct HeaderLayout
{
    static constexpr unsigned srcBits = 6;
    static constexpr unsigned dstBits = 6;
    static constexpr unsigned cmdBits = 4;
    static constexpr unsigned addrBits = 37;
    static constexpr unsigned tagBits = 6;
    static constexpr unsigned lenBits = 5;
    static_assert(srcBits + dstBits + cmdBits + addrBits + tagBits +
                  lenBits == 64);
};

/** Geometry constants. */
constexpr unsigned flitBytes = 16;     ///< 128-bit flits.
constexpr unsigned maxPayloadBytes = 256;
constexpr unsigned maxPayloadFlits = maxPayloadBytes / flitBytes;

/**
 * Byte offset of the tail (CRC word, then DLL word) in the wire image
 * of a packet with @p payload_flits payload flits. The tail sits
 * after the payload, so the offset depends on LEN.
 */
constexpr std::size_t
tailOffset(unsigned payload_flits)
{
    return 8 + static_cast<std::size_t>(payload_flits) * flitBytes;
}

/** A decoded (in-memory) DL packet. */
struct Packet
{
    std::uint8_t src = 0;
    std::uint8_t dst = 0;
    DlCommand cmd = DlCommand::ReadReq;
    /** 37-bit DIMM-local address (the DIMM id bits live in SRC/DST). */
    std::uint64_t addr = 0;
    std::uint8_t tag = 0;
    std::vector<std::uint8_t> payload;
    /** DLL field: low 16 bits = sequence number, high 16 = credits. */
    std::uint32_t dll = 0;

    /** Payload flit count (the LEN field). */
    unsigned
    payloadFlits() const
    {
        return static_cast<unsigned>(
            (payload.size() + flitBytes - 1) / flitBytes);
    }

    /** Total flits on the wire (header/tail flit + payload flits). */
    unsigned numFlits() const { return 1 + payloadFlits(); }

    /** Total bytes on the wire. */
    unsigned wireBytes() const { return numFlits() * flitBytes; }

    bool
    operator==(const Packet &o) const
    {
        return src == o.src && dst == o.dst && cmd == o.cmd &&
               addr == o.addr && tag == o.tag && dll == o.dll &&
               payload == o.payload;
    }
};

/** Pack the six header fields into the 64-bit header word. */
std::uint64_t encodeHeader(const Packet &p);

/** Unpack a 64-bit header word into @p p (payload untouched). */
void decodeHeader(std::uint64_t header, Packet &p);

/**
 * Serialize to the wire format: header word, payload padded to whole
 * flits, then the tail (CRC32 over header + payload + DLL word,
 * followed by the DLL field).
 */
std::vector<std::uint8_t> encode(const Packet &p);

/**
 * Parse a wire buffer. @return true and fill @p out when the CRC
 * validates; false on corruption (the caller sends DllNack). The
 * recovered payload is LEN x 16 bytes (flit-padded form); semantic
 * lengths are tracked by the transaction layer.
 */
bool decode(const std::vector<std::uint8_t> &wire, Packet &out);

} // namespace proto
} // namespace dimmlink

#endif // DIMMLINK_PROTO_PACKET_HH
