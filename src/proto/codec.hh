/**
 * @file
 * The NW-Interface's transaction-layer codec: builders for the DL
 * function packets plus the packetization/decode latency model the
 * FPGA prototype of Section V-A measures (18 cycles of control logic
 * per packet, with the CRC pipelined per flit in an ASIC).
 */

#ifndef DIMMLINK_PROTO_CODEC_HH
#define DIMMLINK_PROTO_CODEC_HH

#include "common/types.hh"
#include "proto/packet.hh"

namespace dimmlink {
namespace proto {

class Codec
{
  public:
    /** Control-FSM cycles to generate or decode a packet (§V-A). */
    static constexpr unsigned controlCycles = 18;
    /** Pipelined CRC cycles per flit in the ASIC implementation. */
    static constexpr unsigned crcCyclesPerFlit = 2;

    /** Cycles to packetize @p p in the buffer chip. */
    static unsigned
    packetizeCycles(const Packet &p)
    {
        return controlCycles + crcCyclesPerFlit * p.numFlits();
    }

    /** Cycles to check + decode @p p at the destination. */
    static unsigned
    decodeCycles(const Packet &p)
    {
        return controlCycles + crcCyclesPerFlit * p.numFlits();
    }

    /** Remote read request: header-only packet. */
    static Packet makeReadReq(std::uint8_t src, std::uint8_t dst,
                              Addr addr, std::uint8_t tag);

    /** Read-return data of @p bytes (zero-filled timing payload). */
    static Packet makeReadResp(std::uint8_t src, std::uint8_t dst,
                               Addr addr, std::uint8_t tag,
                               unsigned bytes);

    /** Remote write carrying @p bytes of data. */
    static Packet makeWriteReq(std::uint8_t src, std::uint8_t dst,
                               Addr addr, std::uint8_t tag,
                               unsigned bytes);

    static Packet makeWriteAck(std::uint8_t src, std::uint8_t dst,
                               Addr addr, std::uint8_t tag);

    /** Broadcast payload packet (DST ignored by routers). */
    static Packet makeBroadcast(std::uint8_t src, unsigned bytes,
                                std::uint8_t tag);

    /** Synchronization message (single flit). */
    static Packet makeSyncMsg(std::uint8_t src, std::uint8_t dst,
                              std::uint8_t tag);

    /**
     * Split @p bytes of bulk data into maximal packets; the final
     * packet carries the remainder.
     * @return per-packet payload sizes.
     */
    static std::vector<unsigned> segment(std::uint64_t bytes);
};

} // namespace proto
} // namespace dimmlink

#endif // DIMMLINK_PROTO_CODEC_HH
