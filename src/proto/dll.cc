#include "proto/dll.hh"

#include <cstring>

#include "common/bitfield.hh"
#include "common/log.hh"

namespace dimmlink {
namespace proto {

namespace {

/**
 * Build a best-effort NACK from a possibly damaged wire image. The
 * DLL tail sits behind the payload, so its offset depends on the
 * header's LEN field; when LEN disagrees with the image size the
 * header itself is suspect and no NACK is produced — the sender's
 * retry timeout recovers instead of a NACK carrying a garbage
 * sequence number.
 */
std::optional<Packet>
makeNack(const std::vector<std::uint8_t> &image)
{
    if (image.size() < flitBytes || image.size() % flitBytes != 0)
        return std::nullopt;

    std::uint64_t h = 0;
    std::memcpy(&h, image.data(), 8);
    Packet hdr;
    decodeHeader(h, hdr);
    const auto len = static_cast<unsigned>(
        bits(h, 64 - HeaderLayout::lenBits, HeaderLayout::lenBits));
    if (image.size() != static_cast<std::size_t>(1 + len) * flitBytes)
        return std::nullopt;

    Packet nack;
    nack.src = hdr.dst;
    nack.dst = hdr.src;
    nack.cmd = DlCommand::DllNack;
    nack.tag = hdr.tag;
    // The sequence number rides in the tail's DLL word, after the CRC.
    std::uint32_t dll = 0;
    std::memcpy(&dll, image.data() + tailOffset(len) + 4, 4);
    nack.dll = dll & 0xffff;
    return nack;
}

} // namespace

RetrySender::RetrySender(EventQueue &eq, Tick timeout_ps,
                         unsigned max_retries, stats::Group &sg,
                         unsigned window, ExhaustFallback fallback)
    : eventq(eq),
      timeout(timeout_ps),
      maxRetries(max_retries),
      window_(window),
      fallback_(fallback),
      statSent(sg.scalar("dllSent")),
      statAcked(sg.scalar("dllAcked")),
      statRetries(sg.scalar("dllRetries")),
      statFailures(sg.scalar("dllFailures")),
      statBackpressured(sg.scalar("dllBackpressured")),
      statRecoveryPs(sg.histogram("dllRecoveryPs",
                                  static_cast<double>(timeout_ps) / 4,
                                  64))
{
    if (window_ == 0 || window_ > maxWindow)
        panic("DLL retry window %u outside [1, %u]", window_,
              maxWindow);
}

std::size_t
RetrySender::inFlight() const
{
    std::size_t n = 0;
    for (const auto &[dst, st] : streams)
        n += st.pending.size();
    return n;
}

std::size_t
RetrySender::queued() const
{
    std::size_t n = 0;
    for (const auto &[dst, st] : streams)
        n += st.sendQ.size();
    return n;
}

void
RetrySender::send(Packet pkt, TransmitFn transmit,
                  std::function<void()> on_acked,
                  std::function<void()> on_failed)
{
    Stream &st = streams[pkt.dst];
    Entry e;
    e.pkt = std::move(pkt);
    e.transmit = std::move(transmit);
    e.onAcked = std::move(on_acked);
    e.onFailed = std::move(on_failed);
    if (windowFull(st)) {
        // Backpressure instead of wrapping onto a live sequence
        // number: the send is queued until completions slide the
        // window forward.
        ++statBackpressured;
        st.sendQ.push_back(std::move(e));
        return;
    }
    admit(st, std::move(e));
}

void
RetrySender::admit(Stream &st, Entry e)
{
    const std::uint16_t seq = st.nextSeq++;
    const std::uint8_t dst = e.pkt.dst;
    e.pkt.dll = (e.pkt.dll & 0xffff0000u) | seq;
    e.firstSentAt = eventq.now();

    auto [it, inserted] = st.pending.emplace(seq, std::move(e));
    if (!inserted)
        panic("DLL sequence number %u wrapped while still in flight",
              seq); // unreachable: the window bound keeps seqs unique

    ++statSent;
    // The transport may complete the send inline (tests wire the
    // ACK path synchronously), erasing the entry mid-call: invoke
    // through stack copies so the executing callable and its packet
    // outlive a re-entrant finish().
    auto tx = it->second.transmit;
    const Packet snapshot = it->second.pkt;
    tx(snapshot);
    armTimer(dst, seq);
}

void
RetrySender::finish(Stream &st,
                    std::map<std::uint16_t, Entry>::iterator it)
{
    st.pending.erase(it);
    // Slide the window past every completed sequence number, then let
    // queued sends through the space that opened up.
    while (st.baseSeq != st.nextSeq && st.pending.count(st.baseSeq) == 0)
        ++st.baseSeq;
    while (!st.sendQ.empty() && !windowFull(st)) {
        Entry e = std::move(st.sendQ.front());
        st.sendQ.pop_front();
        admit(st, std::move(e));
    }
}

void
RetrySender::armTimer(std::uint8_t dst, std::uint16_t seq)
{
    auto stream = streams.find(dst);
    if (stream == streams.end() ||
        stream->second.pending.count(seq) == 0)
        return;
    stream->second.pending[seq].timerId = eventq.scheduleIn(
        timeout, [this, dst, seq] { onTimeout(dst, seq); },
        EventPriority::Control);
}

void
RetrySender::onTimeout(std::uint8_t dst, std::uint16_t seq)
{
    auto stream = streams.find(dst);
    if (stream == streams.end() ||
        stream->second.pending.count(seq) == 0)
        return; // ACKed in the meantime.
    retransmit(dst, seq);
}

void
RetrySender::retransmit(std::uint8_t dst, std::uint16_t seq)
{
    auto stream = streams.find(dst);
    if (stream == streams.end())
        return;
    Stream &st = stream->second;
    auto it = st.pending.find(seq);
    if (it == st.pending.end())
        return;
    Entry &e = it->second;
    if (e.tries >= maxRetries) {
        ++statFailures;
        auto failed = std::move(e.onFailed);
        finish(st, it);
        if (failed)
            failed();
        else if (fallback_ == ExhaustFallback::Panic)
            panic("DL link failed permanently after %u retries",
                  maxRetries);
        else
            warnRateLimited(
                "dll-exhausted", 256,
                "DLL transfer to DIMM %u dropped after %u retries",
                static_cast<unsigned>(dst), maxRetries);
        return;
    }
    ++e.tries;
    ++statRetries;
    // Stack copies for the same re-entrancy reason as in admit().
    auto tx = e.transmit;
    const Packet snapshot = e.pkt;
    tx(snapshot);
    armTimer(dst, seq);
}

void
RetrySender::onControl(const Packet &ctrl)
{
    // The control packet's SRC is the data packet's destination: it
    // names the sequence stream the ACK/NACK belongs to.
    auto stream = streams.find(ctrl.src);
    if (stream == streams.end())
        return; // NACK synthesized from a damaged header.
    Stream &st = stream->second;
    const auto seq = static_cast<std::uint16_t>(ctrl.dll & 0xffff);
    auto it = st.pending.find(seq);
    if (it == st.pending.end())
        return; // Stale control packet (late duplicate ACK).

    if (ctrl.cmd == DlCommand::DllAck) {
        eventq.deschedule(it->second.timerId);
        ++statAcked;
        if (it->second.tries > 0)
            statRecoveryPs.sample(static_cast<double>(
                eventq.now() - it->second.firstSentAt));
        auto acked = std::move(it->second.onAcked);
        finish(st, it);
        if (acked)
            acked();
    } else if (ctrl.cmd == DlCommand::DllNack) {
        eventq.deschedule(it->second.timerId);
        retransmit(ctrl.src, seq);
    } else {
        panic("non-control packet %s fed to RetrySender",
              toString(ctrl.cmd));
    }
}

RetryReceiver::RetryReceiver(stats::Group &sg, unsigned window)
    : window_(window),
      statValid(sg.scalar("dllValid")),
      statCorrupt(sg.scalar("dllCorrupt")),
      statDuplicates(sg.scalar("dllDuplicates")),
      statOutOfOrder(sg.scalar("dllOutOfOrder"))
{
    if (window_ == 0 || window_ > RetrySender::maxWindow)
        panic("DLL receive window %u outside [1, %u]", window_,
              RetrySender::maxWindow);
}

void
RetryReceiver::onArrive(const std::vector<std::uint8_t> &wire,
                        bool corrupted, std::vector<Packet> &deliver,
                        std::optional<Packet> &ack,
                        std::vector<Packet> *stale)
{
    std::vector<std::uint8_t> image = wire;
    if (corrupted && !image.empty())
        image[image.size() / 2] ^= 0x10;

    Packet pkt;
    if (!decode(image, pkt)) {
        ++statCorrupt;
        ack = makeNack(image);
        return;
    }
    ++statValid;

    Packet ctrl;
    ctrl.src = pkt.dst;
    ctrl.dst = pkt.src;
    ctrl.cmd = DlCommand::DllAck;
    ctrl.tag = pkt.tag;
    ctrl.dll = pkt.dll & 0xffff;

    const auto seq = static_cast<std::uint16_t>(pkt.dll & 0xffff);
    SourceState &st = sources[pkt.src];
    const auto ahead = static_cast<std::uint16_t>(seq - st.expected);
    const auto behind = static_cast<std::uint16_t>(st.expected - seq);

    if (ahead == 0) {
        // The in-sequence packet: deliver it plus everything it
        // unblocks from the reorder buffer.
        deliver.push_back(std::move(pkt));
        ++st.expected;
        for (auto held = st.held.find(st.expected);
             held != st.held.end();
             held = st.held.find(st.expected)) {
            deliver.push_back(std::move(held->second));
            st.held.erase(held);
            ++st.expected;
        }
    } else if (ahead < window_) {
        // A gap: hold the packet for in-order delivery. A second copy
        // of a held sequence is a retransmission whose ACK was lost.
        if (st.held.emplace(seq, std::move(pkt)).second)
            ++statOutOfOrder;
        else
            ++statDuplicates;
    } else if (behind <= window_) {
        // Behind the window base: normally delivered before; re-ACK
        // so the sender stops retransmitting, but do not re-deliver.
        // After a skipTo() resync this can instead be the first (and
        // only) arrival of a sequence the skip jumped over while it
        // was in flight — hand it to the stale list for the caller
        // to reconcile.
        ++statDuplicates;
        if (stale)
            stale->push_back(std::move(pkt));
    } else {
        // Outside both windows: the peer's send window is larger than
        // our receive window. NACK instead of ACK — acknowledging a
        // packet we refuse to buffer would lose it; this way the
        // sender retries until the stream catches up.
        ctrl.cmd = DlCommand::DllNack;
    }
    ack = ctrl;
}

void
RetryReceiver::skipTo(std::uint8_t src, std::uint16_t seq,
                      std::vector<Packet> &deliver)
{
    SourceState &st = sources[src];
    // Circular half-space test: with the window far below 2^15, a
    // genuine skip target is always in the "ahead" half. Anything in
    // the "behind" half is a late or duplicated notification.
    if (static_cast<std::uint16_t>(seq - st.expected) >= 0x8000)
        return;
    const auto past = static_cast<std::uint16_t>(seq + 1);
    while (st.expected != past) {
        auto held = st.held.find(st.expected);
        if (held != st.held.end()) {
            deliver.push_back(std::move(held->second));
            st.held.erase(held);
        }
        ++st.expected;
    }
    // The gap is closed; drain the consecutive run it unblocked.
    for (auto held = st.held.find(st.expected); held != st.held.end();
         held = st.held.find(st.expected)) {
        deliver.push_back(std::move(held->second));
        st.held.erase(held);
        ++st.expected;
    }
}

std::size_t
RetryReceiver::bufferedPackets() const
{
    std::size_t n = 0;
    for (const auto &[src, st] : sources)
        n += st.held.size();
    return n;
}

} // namespace proto
} // namespace dimmlink
