#include "proto/dll.hh"

#include "common/log.hh"

namespace dimmlink {
namespace proto {

namespace {

/** Build a best-effort NACK from a possibly damaged wire image. */
Packet
makeNack(const std::vector<std::uint8_t> &image)
{
    Packet hdr;
    std::uint64_t h = 0;
    for (unsigned i = 0; i < 8 && i < image.size(); ++i)
        h |= static_cast<std::uint64_t>(image[i]) << (8 * i);
    decodeHeader(h, hdr);

    Packet nack;
    nack.src = hdr.dst;
    nack.dst = hdr.src;
    nack.cmd = DlCommand::DllNack;
    nack.tag = hdr.tag;
    // The sequence number rides in the tail's DLL word.
    std::uint32_t dll = 0;
    for (unsigned i = 0; i < 4 && 12 + i < image.size(); ++i)
        dll |= static_cast<std::uint32_t>(image[12 + i]) << (8 * i);
    nack.dll = dll & 0xffff;
    return nack;
}

} // namespace

RetrySender::RetrySender(EventQueue &eq, Tick timeout_ps,
                         unsigned max_retries, stats::Group &sg)
    : eventq(eq),
      timeout(timeout_ps),
      maxRetries(max_retries),
      statSent(sg.scalar("dllSent")),
      statAcked(sg.scalar("dllAcked")),
      statRetries(sg.scalar("dllRetries")),
      statFailures(sg.scalar("dllFailures"))
{
}

void
RetrySender::send(Packet pkt, TransmitFn transmit,
                  std::function<void()> on_acked,
                  std::function<void()> on_failed)
{
    const std::uint16_t seq = nextSeq++;
    pkt.dll = (pkt.dll & 0xffff0000u) | seq;

    Entry e;
    e.pkt = pkt;
    e.transmit = std::move(transmit);
    e.onAcked = std::move(on_acked);
    e.onFailed = std::move(on_failed);
    auto [it, inserted] = pending.emplace(seq, std::move(e));
    if (!inserted)
        panic("DLL sequence number %u wrapped while still in flight",
              seq);

    ++statSent;
    it->second.transmit(it->second.pkt);
    armTimer(seq);
}

void
RetrySender::armTimer(std::uint16_t seq)
{
    auto it = pending.find(seq);
    if (it == pending.end())
        return;
    it->second.timerId = eventq.scheduleIn(
        timeout, [this, seq] { onTimeout(seq); },
        EventPriority::Control);
}

void
RetrySender::onTimeout(std::uint16_t seq)
{
    auto it = pending.find(seq);
    if (it == pending.end())
        return; // ACKed in the meantime.
    retransmit(seq);
}

void
RetrySender::retransmit(std::uint16_t seq)
{
    auto it = pending.find(seq);
    if (it == pending.end())
        return;
    Entry &e = it->second;
    if (e.tries >= maxRetries) {
        ++statFailures;
        auto failed = std::move(e.onFailed);
        pending.erase(it);
        if (failed)
            failed();
        else
            panic("DL link failed permanently after %u retries",
                  maxRetries);
        return;
    }
    ++e.tries;
    ++statRetries;
    e.transmit(e.pkt);
    armTimer(seq);
}

void
RetrySender::onControl(const Packet &ctrl)
{
    const auto seq = static_cast<std::uint16_t>(ctrl.dll & 0xffff);
    auto it = pending.find(seq);
    if (it == pending.end())
        return; // Stale control packet (late duplicate ACK).

    if (ctrl.cmd == DlCommand::DllAck) {
        eventq.deschedule(it->second.timerId);
        ++statAcked;
        auto acked = std::move(it->second.onAcked);
        pending.erase(it);
        if (acked)
            acked();
    } else if (ctrl.cmd == DlCommand::DllNack) {
        eventq.deschedule(it->second.timerId);
        retransmit(seq);
    } else {
        panic("non-control packet %s fed to RetrySender",
              toString(ctrl.cmd));
    }
}

RetryReceiver::RetryReceiver(stats::Group &sg)
    : statValid(sg.scalar("dllValid")),
      statCorrupt(sg.scalar("dllCorrupt")),
      statDuplicates(sg.scalar("dllDuplicates"))
{
}

bool
RetryReceiver::onArrive(const std::vector<std::uint8_t> &wire,
                        bool corrupted, Packet &out, Packet &ack)
{
    std::vector<std::uint8_t> image = wire;
    if (corrupted && !image.empty())
        image[image.size() / 2] ^= 0x10;

    if (!decode(image, out)) {
        ++statCorrupt;
        // Best effort NACK: the header may itself be damaged, but the
        // sender also has the timeout as a backstop.
        ack = makeNack(image);
        return false;
    }

    ++statValid;
    ack.src = out.dst;
    ack.dst = out.src;
    ack.cmd = DlCommand::DllAck;
    ack.tag = out.tag;
    ack.dll = out.dll & 0xffff;

    const auto key = std::make_pair(out.src,
                                    static_cast<std::uint16_t>(
                                        out.dll & 0xffff));
    if (seen.count(key)) {
        ++statDuplicates;
        return false; // Re-ACK but do not re-deliver.
    }
    seen[key] = true;
    return true;
}

} // namespace proto
} // namespace dimmlink
