#include "proto/packet.hh"

#include <cstring>

#include "common/bitfield.hh"
#include "common/crc32.hh"
#include "common/log.hh"

namespace dimmlink {
namespace proto {

const char *
toString(DlCommand c)
{
    switch (c) {
      case DlCommand::ReadReq: return "ReadReq";
      case DlCommand::ReadResp: return "ReadResp";
      case DlCommand::WriteReq: return "WriteReq";
      case DlCommand::WriteAck: return "WriteAck";
      case DlCommand::Broadcast: return "Broadcast";
      case DlCommand::SyncMsg: return "SyncMsg";
      case DlCommand::FwdReq: return "FwdReq";
      case DlCommand::DllAck: return "DllAck";
      case DlCommand::DllNack: return "DllNack";
    }
    return "?";
}

std::uint64_t
encodeHeader(const Packet &p)
{
    using L = HeaderLayout;
    std::uint64_t h = 0;
    unsigned pos = 0;
    h = insertBits(h, pos, L::srcBits, p.src);
    pos += L::srcBits;
    h = insertBits(h, pos, L::dstBits, p.dst);
    pos += L::dstBits;
    h = insertBits(h, pos, L::cmdBits,
                   static_cast<std::uint64_t>(p.cmd));
    pos += L::cmdBits;
    h = insertBits(h, pos, L::addrBits, p.addr);
    pos += L::addrBits;
    h = insertBits(h, pos, L::tagBits, p.tag);
    pos += L::tagBits;
    h = insertBits(h, pos, L::lenBits, p.payloadFlits());
    return h;
}

void
decodeHeader(std::uint64_t header, Packet &p)
{
    using L = HeaderLayout;
    unsigned pos = 0;
    p.src = static_cast<std::uint8_t>(bits(header, pos, L::srcBits));
    pos += L::srcBits;
    p.dst = static_cast<std::uint8_t>(bits(header, pos, L::dstBits));
    pos += L::dstBits;
    p.cmd = static_cast<DlCommand>(bits(header, pos, L::cmdBits));
    pos += L::cmdBits;
    p.addr = bits(header, pos, L::addrBits);
    pos += L::addrBits;
    p.tag = static_cast<std::uint8_t>(bits(header, pos, L::tagBits));
}

std::vector<std::uint8_t>
encode(const Packet &p)
{
    if (p.payload.size() > maxPayloadBytes)
        panic("payload of %zu bytes exceeds the %u-byte packet limit",
              p.payload.size(), maxPayloadBytes);
    if (p.addr >> HeaderLayout::addrBits)
        panic("address 0x%llx does not fit the 37-bit ADDR field",
              static_cast<unsigned long long>(p.addr));

    const unsigned pay_flits = p.payloadFlits();
    std::vector<std::uint8_t> wire(
        static_cast<std::size_t>(1 + pay_flits) * flitBytes, 0);

    const std::uint64_t header = encodeHeader(p);
    const std::size_t tail = tailOffset(pay_flits);
    std::memcpy(wire.data(), &header, 8);
    if (!p.payload.empty())
        std::memcpy(wire.data() + 8, p.payload.data(),
                    p.payload.size());
    std::memcpy(wire.data() + tail + 4, &p.dll, 4);

    // CRC covers the header word, the (padded) payload, and the DLL
    // word; a flip in the sequence number must not pass validation.
    std::uint32_t crc = crc32Update(0, wire.data(), tail);
    crc = crc32Update(crc, wire.data() + tail + 4, 4);
    std::memcpy(wire.data() + tail, &crc, 4);
    return wire;
}

bool
decode(const std::vector<std::uint8_t> &wire, Packet &out)
{
    if (wire.size() < flitBytes || wire.size() % flitBytes != 0)
        return false;

    std::uint64_t header;
    std::memcpy(&header, wire.data(), 8);
    decodeHeader(header, out);

    const auto len = static_cast<unsigned>(
        bits(header, 64 - HeaderLayout::lenBits,
             HeaderLayout::lenBits));
    if (wire.size() != static_cast<std::size_t>(1 + len) * flitBytes)
        return false;

    const std::size_t tail = tailOffset(len);
    std::uint32_t crc_field;
    std::memcpy(&crc_field, wire.data() + tail, 4);
    std::memcpy(&out.dll, wire.data() + tail + 4, 4);

    std::uint32_t crc = crc32Update(0, wire.data(), tail);
    crc = crc32Update(crc, wire.data() + tail + 4, 4);
    if (crc != crc_field)
        return false;

    out.payload.assign(wire.begin() + 8,
                       wire.begin() + static_cast<std::ptrdiff_t>(tail));
    return true;
}

} // namespace proto
} // namespace dimmlink
