/**
 * @file
 * Data Link Layer retry control (Section III-B): every transaction
 * packet is CRC-checked at the destination; an ACK flows back on
 * success, a NACK (or silence) triggers retransmission from the
 * source after a timeout, bounded by a retry budget.
 *
 * Both ends run a selective-repeat window over the 16-bit sequence
 * space in the DLL tail word. The sender keeps an independent
 * sequence stream per destination (the receiver reconstructs order
 * per source, so every (source, destination) pair must see a gapless
 * sequence space); within each stream it admits at most `window`
 * sequence numbers between the oldest unacknowledged packet and the
 * next one to stamp, queueing further sends instead of wrapping. The
 * receiver tracks a per-source `expected` pointer plus a bounded
 * reorder buffer, delivering upward exactly once and in order no
 * matter how arrivals are corrupted, reordered, or duplicated. With
 * the window capped well below 2^15, "new" and "already delivered"
 * sequence numbers occupy disjoint halves of the circular space, so
 * duplicate filtering keeps working past any number of wraps.
 */

#ifndef DIMMLINK_PROTO_DLL_HH
#define DIMMLINK_PROTO_DLL_HH

#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "common/stats.hh"
#include "proto/packet.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace proto {

/**
 * What a RetrySender does when a send exhausts its retry budget and
 * the caller supplied no on_failed handler. Panic preserves the
 * historical fail-stop behavior; Drop logs a rate-limited warning and
 * discards the transfer, for callers (the DL fabric) that recover at
 * a higher layer.
 */
enum class ExhaustFallback { Panic, Drop };

/**
 * Sender-side retry state for one DIMM's DL-Controller. Sequence
 * numbers live in the low 16 bits of the DLL field.
 */
class RetrySender
{
  public:
    /** Invoked to (re)transmit a packet on the wire. */
    using TransmitFn = std::function<void(const Packet &)>;

    /** Window used when the config does not say otherwise. */
    static constexpr unsigned defaultWindow = 64;
    /** Window ceiling: old and new halves of the 16-bit sequence
     * space must stay disjoint (see RetryReceiver). */
    static constexpr unsigned maxWindow = 8192;

    RetrySender(EventQueue &eq, Tick timeout_ps, unsigned max_retries,
                stats::Group &sg, unsigned window = defaultWindow,
                ExhaustFallback fallback = ExhaustFallback::Panic);

    /**
     * Send @p pkt reliably. @p transmit is called immediately (or as
     * soon as the send window opens) and again on every retry;
     * @p on_acked fires when the ACK arrives; @p on_failed fires after
     * the retry budget is exhausted.
     */
    void send(Packet pkt, TransmitFn transmit,
              std::function<void()> on_acked,
              std::function<void()> on_failed = nullptr);

    /**
     * Feed an arriving DllAck / DllNack to the sender. The control
     * packet's SRC field (the data packet's original destination)
     * selects the sequence stream.
     */
    void onControl(const Packet &ctrl);

    /** Outstanding unacknowledged packets, across all destinations. */
    std::size_t inFlight() const;

    /** Sends waiting for the window to open, across destinations. */
    std::size_t queued() const;

    unsigned window() const { return window_; }

  private:
    struct Entry
    {
        Packet pkt;
        TransmitFn transmit;
        std::function<void()> onAcked;
        std::function<void()> onFailed;
        unsigned tries = 0;
        std::uint64_t timerId = 0;
        Tick firstSentAt = 0;
    };

    /** One destination's sequence stream: the receiver reorders per
     * source, so the space must be gapless per (source, dest) pair. */
    struct Stream
    {
        std::map<std::uint16_t, Entry> pending;
        /** Sends admitted while the window was full, in order. */
        std::deque<Entry> sendQ;
        std::uint16_t nextSeq = 0;
        /** Oldest potentially-unacknowledged sequence number. */
        std::uint16_t baseSeq = 0;
    };

    /** True when [baseSeq, nextSeq) already spans the full window. */
    bool windowFull(const Stream &st) const
    {
        return static_cast<std::uint16_t>(st.nextSeq - st.baseSeq) >=
               window_;
    }

    /** Stamp the stream's next sequence onto @p e and transmit it. */
    void admit(Stream &st, Entry e);
    /** Remove a completed entry, slide the window, drain the queue. */
    void finish(Stream &st, std::map<std::uint16_t, Entry>::iterator it);
    void armTimer(std::uint8_t dst, std::uint16_t seq);
    void onTimeout(std::uint8_t dst, std::uint16_t seq);
    void retransmit(std::uint8_t dst, std::uint16_t seq);

    EventQueue &eventq;
    Tick timeout;
    unsigned maxRetries;
    unsigned window_;
    ExhaustFallback fallback_;
    /** Per-destination streams, keyed by the packet's DST field. */
    std::map<std::uint8_t, Stream> streams;

    stats::Scalar &statSent;
    stats::Scalar &statAcked;
    stats::Scalar &statRetries;
    stats::Scalar &statFailures;
    stats::Scalar &statBackpressured;
    /** Extra latency ACK arrival minus first transmission, sampled
     * only for packets that needed at least one retry. */
    stats::Histogram &statRecoveryPs;
};

/**
 * Receiver-side helper: validates the wire image (optionally through
 * an injected corruption), builds the matching ACK/NACK, filters
 * duplicate deliveries caused by retransmitted packets whose original
 * ACK was lost, and reorders out-of-sequence arrivals so the upward
 * delivery is exactly-once and in-order per source.
 */
class RetryReceiver
{
  public:
    explicit RetryReceiver(stats::Group &sg,
                           unsigned window = RetrySender::defaultWindow);

    /**
     * Process an arriving transaction packet's wire image.
     * @param corrupted inject a bit flip before validation (tests).
     * @param deliver appended with every packet that became
     *        deliverable, in sequence order (a gap fill can release
     *        several held packets at once).
     * @param ack set to the control packet to send back, or left
     *        empty when the image is too damaged to even NACK (the
     *        sender's timeout is the backstop then).
     */
    void onArrive(const std::vector<std::uint8_t> &wire, bool corrupted,
                  std::vector<Packet> &deliver,
                  std::optional<Packet> &ack,
                  std::vector<Packet> *stale = nullptr);

    /**
     * The sender retired sequence @p seq of @p src's stream without a
     * normal in-order delivery (retry exhaustion; the payload either
     * travelled out-of-band or was dropped on purpose). Advance the
     * stream past the permanent gap so later sequences are not held
     * forever: any packets buffered up to and including @p seq are
     * appended to @p deliver in order, `expected` moves past @p seq,
     * and the consecutive run that follows drains too. A stale skip
     * (@p seq already behind `expected`) is a no-op, so the
     * notification may be duplicated or arrive late.
     *
     * A sequence the skip jumps over while its packet is still in
     * flight will classify as behind-the-window on arrival; such
     * first-time "duplicates" surface through onArrive's @p stale
     * list so the caller can reconcile them.
     */
    void skipTo(std::uint8_t src, std::uint16_t seq,
                std::vector<Packet> &deliver);

    /** Out-of-order packets currently held across all sources. */
    std::size_t bufferedPackets() const;

    /** Sources with receive state (bounded by the 6-bit SRC space). */
    std::size_t trackedSources() const { return sources.size(); }

  private:
    struct SourceState
    {
        /** Next in-sequence number to deliver upward. */
        std::uint16_t expected = 0;
        /** Valid arrivals ahead of expected, keyed by sequence. */
        std::map<std::uint16_t, Packet> held;
    };

    std::map<std::uint8_t, SourceState> sources;
    unsigned window_;

    stats::Scalar &statValid;
    stats::Scalar &statCorrupt;
    stats::Scalar &statDuplicates;
    stats::Scalar &statOutOfOrder;
};

} // namespace proto
} // namespace dimmlink

#endif // DIMMLINK_PROTO_DLL_HH
