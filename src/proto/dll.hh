/**
 * @file
 * Data Link Layer retry control (Section III-B): every transaction
 * packet is CRC-checked at the destination; an ACK flows back on
 * success, a NACK (or silence) triggers retransmission from the
 * source after a timeout, bounded by a retry budget.
 */

#ifndef DIMMLINK_PROTO_DLL_HH
#define DIMMLINK_PROTO_DLL_HH

#include <functional>
#include <map>

#include "common/stats.hh"
#include "proto/packet.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace proto {

/**
 * Sender-side retry state for one DIMM's DL-Controller. Sequence
 * numbers live in the low 16 bits of the DLL field.
 */
class RetrySender
{
  public:
    /** Invoked to (re)transmit a packet on the wire. */
    using TransmitFn = std::function<void(const Packet &)>;

    RetrySender(EventQueue &eq, Tick timeout_ps, unsigned max_retries,
                stats::Group &sg);

    /**
     * Send @p pkt reliably. @p transmit is called immediately and
     * again on every retry; @p on_acked fires when the ACK arrives;
     * @p on_failed fires after the retry budget is exhausted.
     */
    void send(Packet pkt, TransmitFn transmit,
              std::function<void()> on_acked,
              std::function<void()> on_failed = nullptr);

    /** Feed an arriving DllAck / DllNack to the sender. */
    void onControl(const Packet &ctrl);

    /** Outstanding unacknowledged packets. */
    std::size_t inFlight() const { return pending.size(); }

  private:
    struct Entry
    {
        Packet pkt;
        TransmitFn transmit;
        std::function<void()> onAcked;
        std::function<void()> onFailed;
        unsigned tries = 0;
        std::uint64_t timerId = 0;
    };

    void armTimer(std::uint16_t seq);
    void onTimeout(std::uint16_t seq);
    void retransmit(std::uint16_t seq);

    EventQueue &eventq;
    Tick timeout;
    unsigned maxRetries;
    std::map<std::uint16_t, Entry> pending;
    std::uint16_t nextSeq = 0;

    stats::Scalar &statSent;
    stats::Scalar &statAcked;
    stats::Scalar &statRetries;
    stats::Scalar &statFailures;
};

/**
 * Receiver-side helper: validates the wire image (optionally through
 * an injected corruption), builds the matching ACK/NACK, and filters
 * duplicate deliveries caused by retransmitted packets whose original
 * ACK was lost.
 */
class RetryReceiver
{
  public:
    explicit RetryReceiver(stats::Group &sg);

    /**
     * Process an arriving transaction packet's wire image.
     * @param corrupted true when the transport flipped bits en route.
     * @param out decoded packet (valid only when the result is true).
     * @param ack filled with the control packet to send back.
     * @return true when @p out should be delivered upward (first
     *         valid arrival of this sequence number).
     */
    bool onArrive(const std::vector<std::uint8_t> &wire, bool corrupted,
                  Packet &out, Packet &ack);

  private:
    /** Sequence numbers already delivered (per source DIMM). */
    std::map<std::pair<std::uint8_t, std::uint16_t>, bool> seen;

    stats::Scalar &statValid;
    stats::Scalar &statCorrupt;
    stats::Scalar &statDuplicates;
};

} // namespace proto
} // namespace dimmlink

#endif // DIMMLINK_PROTO_DLL_HH
