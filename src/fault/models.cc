/**
 * @file
 * The built-in fault models. Each is an anonymous-namespace class
 * plus a FaultModelFactory registrar; configs select them by name.
 */

#include "fault/fault_model.hh"

namespace dimmlink {
namespace fault {
namespace {

/** The explicit no-op, so "none" is a registered, listable choice. */
class NoneModel : public FaultModel
{
  public:
    NoneModel(const FaultConfig &, std::uint64_t seed)
        : FaultModel(seed)
    {}

    Effect onTransmit(Tick, unsigned, noc::Message &) override
    {
        return {};
    }
};

/** Independent random bit errors at a fixed BER. */
class BerModel : public FaultModel
{
  public:
    BerModel(const FaultConfig &cfg, std::uint64_t seed)
        : FaultModel(seed), ber(cfg.ber)
    {}

    Effect onTransmit(Tick, unsigned bits, noc::Message &msg) override
    {
        Effect e;
        e.corrupted = applyBitErrors(ber, bits, msg) > 0;
        return e;
    }

  private:
    const double ber;
};

/**
 * Bursty errors: the link is normally clean; with probability
 * burstProb a message starts a burst, and the next burstLen messages
 * see bit errors at the configured BER (correlated noise — e.g. a
 * marginal lane or a transient EMI event).
 */
class BurstModel : public FaultModel
{
  public:
    BurstModel(const FaultConfig &cfg, std::uint64_t seed)
        : FaultModel(seed),
          ber(cfg.ber),
          burstProb(cfg.burstProb),
          burstLen(cfg.burstLen)
    {}

    Effect onTransmit(Tick, unsigned bits, noc::Message &msg) override
    {
        if (inBurstLeft == 0 && rng.chance(burstProb))
            inBurstLeft = burstLen;
        Effect e;
        if (inBurstLeft > 0) {
            --inBurstLeft;
            e.corrupted = applyBitErrors(ber, bits, msg) > 0;
        }
        return e;
    }

  private:
    const double ber;
    const double burstProb;
    const unsigned burstLen;
    unsigned inBurstLeft = 0;
};

/**
 * A derated link: every transmission serializes at degradeFactor of
 * the nominal rate (link retraining dropped lanes, or thermal
 * throttling). No corruption — purely a bandwidth fault.
 */
class DegradeModel : public FaultModel
{
  public:
    DegradeModel(const FaultConfig &cfg, std::uint64_t seed)
        : FaultModel(seed), scale(1.0 / cfg.degradeFactor)
    {}

    Effect onTransmit(Tick, unsigned, noc::Message &) override
    {
        Effect e;
        e.serScale = scale;
        return e;
    }

  private:
    const double scale;
};

/**
 * A stuck link: from stuckAtPs the link is down for stuckForPs,
 * repeating every stuckPeriodPs (0 = one outage). Transmissions that
 * start inside an outage stall until it ends.
 */
class StuckModel : public FaultModel
{
  public:
    StuckModel(const FaultConfig &cfg, std::uint64_t seed)
        : FaultModel(seed),
          at(cfg.stuckAtPs),
          dur(cfg.stuckForPs),
          period(cfg.stuckPeriodPs)
    {}

    Effect onTransmit(Tick start, unsigned, noc::Message &) override
    {
        Effect e;
        if (start < at || dur == 0)
            return e;
        const Tick since = start - at;
        const Tick phase = period > 0 ? since % period : since;
        if (phase < dur)
            e.stallPs = dur - phase;
        return e;
    }

  private:
    const Tick at;
    const Tick dur;
    const Tick period;
};

template <typename M>
std::unique_ptr<FaultModel>
make(const FaultConfig &cfg, std::uint64_t seed)
{
    return std::make_unique<M>(cfg, seed);
}

FaultModelFactory::Registrar regNone("none", make<NoneModel>);
FaultModelFactory::Registrar regBer("ber", make<BerModel>);
FaultModelFactory::Registrar regBurst("burst", make<BurstModel>);
FaultModelFactory::Registrar regDegrade("degrade", make<DegradeModel>);
FaultModelFactory::Registrar regStuck("stuck", make<StuckModel>);

} // namespace
} // namespace fault
} // namespace dimmlink
