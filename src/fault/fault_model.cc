#include "fault/fault_model.hh"

#include <cmath>

namespace dimmlink {
namespace fault {

std::uint64_t
streamSeed(std::uint64_t base, const std::string &link_name)
{
    // FNV-1a over the name, then mixed with the base seed.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : link_name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h ^ ((base + 1) * 0x9e3779b97f4a7c15ull);
}

unsigned
FaultModel::applyBitErrors(double ber, unsigned bits,
                           noc::Message &msg)
{
    if (ber <= 0.0 || bits == 0)
        return 0;

    // Geometric skip sampling: draw the gap to the next error bit
    // instead of a Bernoulli trial per bit.
    const double log1mp = std::log1p(-ber);
    unsigned flips = 0;
    std::uint64_t idx = 0;
    while (true) {
        const double u = rng.real();
        const double skip = std::floor(std::log1p(-u) / log1mp);
        if (skip >= static_cast<double>(bits))
            break;
        idx += static_cast<std::uint64_t>(skip);
        if (idx >= bits)
            break;
        if (msg.wire && !msg.wire->empty() &&
            idx < msg.wire->size() * 8ull) {
            (*msg.wire)[idx / 8] ^=
                static_cast<std::uint8_t>(1u << (idx % 8));
        }
        ++flips;
        ++idx;
    }
    if (flips > 0)
        msg.corrupted = true;
    return flips;
}

std::unique_ptr<FaultModel>
makeFaultModel(const FaultConfig &cfg, const std::string &link_name)
{
    if (cfg.model == "none")
        return nullptr;
    if (!cfg.linkFilter.empty() &&
        link_name.find(cfg.linkFilter) == std::string::npos)
        return nullptr;
    return FaultModelFactory::instance().create(
        cfg.model, cfg, streamSeed(cfg.seed, link_name));
}

} // namespace fault
} // namespace dimmlink
