/**
 * @file
 * Deterministic link-fault injection (the ROADMAP's robustness
 * direction, in the spirit of gem5's fault-injection harnesses): a
 * FaultModel attached to a noc::Link perturbs each transmission —
 * flipping real bits of the wire image, derating the serialization
 * rate, or stalling the link — from a per-link RNG stream derived
 * from the config seed and the link's name, so every run is
 * reproducible and seed-sweepable. Implementations self-register in
 * the FaultModelFactory ("none", "ber", "burst", "degrade", "stuck").
 */

#ifndef DIMMLINK_FAULT_FAULT_MODEL_HH
#define DIMMLINK_FAULT_FAULT_MODEL_HH

#include <memory>
#include <string>

#include "common/config.hh"
#include "common/factory.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "noc/message.hh"

namespace dimmlink {
namespace fault {

class FaultModel
{
  public:
    /** What one fault does to one transmission. */
    struct Effect
    {
        /** Bits were flipped en route (CRC catches them downstream). */
        bool corrupted = false;
        /** Serialization-time multiplier (degraded link: > 1). */
        double serScale = 1.0;
        /** Stall before serialization may begin (link outage). */
        Tick stallPs = 0;
    };

    explicit FaultModel(std::uint64_t stream_seed) : rng(stream_seed) {}
    virtual ~FaultModel() = default;

    /**
     * Apply the model to @p msg, about to start serializing at tick
     * @p start over @p bits wire bits. May flip bits of msg.wire in
     * place (and always sets msg.corrupted when it tampered).
     */
    virtual Effect onTransmit(Tick start, unsigned bits,
                              noc::Message &msg) = 0;

  protected:
    /**
     * Flip each of @p bits independently with probability @p ber
     * (geometric skip sampling, so tiny BERs cost ~0 draws). Flips
     * land in *msg.wire when an image travels with the message.
     * @return the number of bits flipped.
     */
    unsigned applyBitErrors(double ber, unsigned bits,
                            noc::Message &msg);

    Rng rng;
};

using FaultModelFactory =
    Factory<FaultModel, const FaultConfig &, std::uint64_t>;

/**
 * The deterministic per-link RNG stream seed: a hash of the link name
 * mixed with the base seed. Distinct links get decorrelated streams;
 * the mapping is stable across runs and machines.
 */
std::uint64_t streamSeed(std::uint64_t base,
                         const std::string &link_name);

/**
 * Build the configured fault model for @p link_name, or nullptr when
 * the link is unfaulted (model "none", or the name does not match
 * faults.linkFilter).
 */
std::unique_ptr<FaultModel> makeFaultModel(const FaultConfig &cfg,
                                           const std::string &link_name);

} // namespace fault

template <>
struct FactoryTraits<fault::FaultModel>
{
    static constexpr const char *noun = "fault model";
};

} // namespace dimmlink

#endif // DIMMLINK_FAULT_FAULT_MODEL_HH
