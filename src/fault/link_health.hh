/**
 * @file
 * Per-link health tracking for the DL bridge network. Each directed
 * link runs a small state machine — up -> suspect -> down — driven by
 * DLL retry exhaustions and timed re-probe packets, so a permanently
 * stuck link is taken out of the routing tables instead of absorbing
 * retries forever, and a recovered link is put back.
 *
 * The tracker owns only the state machine and its timers; actually
 * putting a probe on the wire, counting stats, and recomputing routes
 * are delegated through callbacks so the class stays independent of
 * the fabric and the noc.
 */

#ifndef DIMMLINK_FAULT_LINK_HEALTH_HH
#define DIMMLINK_FAULT_LINK_HEALTH_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace fault {

enum class LinkState { Up, Suspect, Down };

const char *toString(LinkState s);

class LinkHealth
{
  public:
    struct Callbacks
    {
        /**
         * Put one probe packet on the physical link a -> b. The owner
         * must arrange for probeResult(a, b, probe_id, clean) to be
         * called when (if ever) the probe reaches the far end; a probe
         * that never arrives times out after probeTimeoutPs.
         */
        std::function<void(int a, int b, std::uint64_t probe_id)>
            sendProbe;
        /** Fired on every state transition (stats, tracing, routing). */
        std::function<void(int a, int b, LinkState from, LinkState to)>
            onTransition;
        /** A probe timed out or arrived corrupted. */
        std::function<void(int a, int b)> onProbeFailed;
    };

    /**
     * @param suspect_after      consecutive DLL exhaustions blaming an
     *                           edge before it turns suspect.
     * @param reprobe_interval   gap between probes of a non-up edge.
     * @param probe_timeout      how long to wait for a probe to land.
     */
    LinkHealth(EventQueue &eq, unsigned suspect_after,
               Tick reprobe_interval, Tick probe_timeout);

    void setCallbacks(Callbacks cb) { cbs = std::move(cb); }

    /** Register a directed edge; edges start Up. */
    void addEdge(int a, int b);

    /**
     * A reliable transfer exhausted its retry budget; blame every
     * directed edge on @p path (the route it was taking). Edges that
     * accumulate suspectAfter consecutive blames turn suspect and
     * start probing.
     */
    void noteExhausted(const std::vector<std::pair<int, int>> &path);

    /**
     * A reliable transfer was acknowledged end-to-end over @p path:
     * every Up edge on it demonstrably moved traffic, so its
     * consecutive-blame count resets. Without this, "consecutive"
     * failures would accumulate over the whole run and unrelated
     * exhaustions could flip a healthy edge to suspect. Edges that
     * already left Up are owned by the probe machinery and are not
     * touched.
     */
    void noteSuccess(const std::vector<std::pair<int, int>> &path);

    /**
     * The probe @p probe_id put on a -> b by Callbacks::sendProbe
     * reached the far end. @p clean is false when a fault model
     * corrupted it in flight. Stale ids (a newer probe superseded
     * this one) are ignored.
     */
    void probeResult(int a, int b, std::uint64_t probe_id, bool clean);

    LinkState state(int a, int b) const;
    std::size_t numSuspectOrDown() const;
    /** One line per non-up edge, for hang diagnostics. */
    std::string dump() const;

    /** One registered edge and its current state. */
    struct EdgeState
    {
        int a;
        int b;
        LinkState state;
    };
    /** Every registered edge with its state, in key order: the
     * queryable health snapshot consumers (the serving circuit
     * breaker, tests, debug tooling) read instead of poking edges
     * one by one. */
    std::vector<EdgeState> snapshot() const;

  private:
    struct Edge
    {
        LinkState state = LinkState::Up;
        unsigned consecFails = 0;
        std::uint64_t outstandingProbe = 0; ///< 0 = none in flight.
        EventQueue::EventId timeoutEv = 0;
        bool reprobePending = false;
    };

    using Key = std::pair<int, int>;

    void transition(const Key &k, Edge &e, LinkState to);
    void sendProbeNow(const Key &k, Edge &e);
    void probeFailed(const Key &k, Edge &e);
    void scheduleReprobe(const Key &k, Edge &e);

    EventQueue &eventq;
    unsigned suspectAfter;
    Tick reprobeInterval;
    Tick probeTimeout;
    Callbacks cbs;
    std::map<Key, Edge> edges;
    std::uint64_t nextProbeId = 1;
};

} // namespace fault
} // namespace dimmlink

#endif // DIMMLINK_FAULT_LINK_HEALTH_HH
