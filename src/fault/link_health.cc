#include "fault/link_health.hh"

#include <sstream>

#include "common/log.hh"

namespace dimmlink {
namespace fault {

const char *
toString(LinkState s)
{
    switch (s) {
      case LinkState::Up: return "up";
      case LinkState::Suspect: return "suspect";
      case LinkState::Down: return "down";
    }
    return "?";
}

LinkHealth::LinkHealth(EventQueue &eq, unsigned suspect_after,
                       Tick reprobe_interval, Tick probe_timeout)
    : eventq(eq),
      suspectAfter(suspect_after),
      reprobeInterval(reprobe_interval),
      probeTimeout(probe_timeout)
{
}

void
LinkHealth::addEdge(int a, int b)
{
    edges.emplace(Key{a, b}, Edge{});
}

void
LinkHealth::transition(const Key &k, Edge &e, LinkState to)
{
    if (e.state == to)
        return;
    const LinkState from = e.state;
    e.state = to;
    if (to == LinkState::Up)
        e.consecFails = 0;
    if (cbs.onTransition)
        cbs.onTransition(k.first, k.second, from, to);
}

void
LinkHealth::sendProbeNow(const Key &k, Edge &e)
{
    if (e.outstandingProbe != 0)
        return; // One probe in flight per edge at a time.
    const std::uint64_t id = nextProbeId++;
    e.outstandingProbe = id;
    e.timeoutEv = eventq.scheduleIn(
        probeTimeout,
        [this, k, id] {
            auto it = edges.find(k);
            if (it == edges.end() ||
                it->second.outstandingProbe != id)
                return; // Probe already resolved.
            it->second.outstandingProbe = 0;
            it->second.timeoutEv = 0;
            probeFailed(k, it->second);
        },
        EventPriority::Control);
    if (cbs.sendProbe)
        cbs.sendProbe(k.first, k.second, id);
}

void
LinkHealth::probeFailed(const Key &k, Edge &e)
{
    if (cbs.onProbeFailed)
        cbs.onProbeFailed(k.first, k.second);
    // A suspect edge that fails its probe is confirmed down; a down
    // edge just stays down. Either way, keep probing for recovery.
    if (e.state == LinkState::Suspect)
        transition(k, e, LinkState::Down);
    scheduleReprobe(k, e);
}

void
LinkHealth::scheduleReprobe(const Key &k, Edge &e)
{
    if (e.reprobePending)
        return;
    e.reprobePending = true;
    eventq.scheduleIn(
        reprobeInterval,
        [this, k] {
            auto it = edges.find(k);
            if (it == edges.end())
                return;
            it->second.reprobePending = false;
            if (it->second.state != LinkState::Up)
                sendProbeNow(k, it->second);
        },
        EventPriority::Control);
}

void
LinkHealth::noteExhausted(const std::vector<std::pair<int, int>> &path)
{
    for (const auto &edge : path) {
        auto it = edges.find(edge);
        if (it == edges.end())
            continue;
        Edge &e = it->second;
        if (e.state != LinkState::Up)
            continue; // Probes own the edge once it leaves Up.
        if (++e.consecFails < suspectAfter)
            continue;
        transition(edge, e, LinkState::Suspect);
        sendProbeNow(edge, e);
    }
}

void
LinkHealth::noteSuccess(const std::vector<std::pair<int, int>> &path)
{
    for (const auto &edge : path) {
        auto it = edges.find(edge);
        if (it == edges.end())
            continue;
        if (it->second.state == LinkState::Up)
            it->second.consecFails = 0;
    }
}

void
LinkHealth::probeResult(int a, int b, std::uint64_t probe_id,
                        bool clean)
{
    auto it = edges.find(Key{a, b});
    if (it == edges.end())
        return;
    Edge &e = it->second;
    if (e.outstandingProbe != probe_id)
        return; // Stale: a timeout or newer probe superseded it.
    e.outstandingProbe = 0;
    if (e.timeoutEv != 0) {
        eventq.deschedule(e.timeoutEv);
        e.timeoutEv = 0;
    }
    if (clean)
        transition(Key{a, b}, e, LinkState::Up);
    else
        probeFailed(Key{a, b}, e);
}

LinkState
LinkHealth::state(int a, int b) const
{
    const auto it = edges.find(Key{a, b});
    return it == edges.end() ? LinkState::Up : it->second.state;
}

std::size_t
LinkHealth::numSuspectOrDown() const
{
    std::size_t n = 0;
    for (const auto &kv : edges)
        if (kv.second.state != LinkState::Up)
            ++n;
    return n;
}

std::vector<LinkHealth::EdgeState>
LinkHealth::snapshot() const
{
    std::vector<EdgeState> out;
    out.reserve(edges.size());
    for (const auto &kv : edges)
        out.push_back({kv.first.first, kv.first.second,
                       kv.second.state});
    return out;
}

std::string
LinkHealth::dump() const
{
    std::ostringstream os;
    for (const auto &kv : edges) {
        if (kv.second.state == LinkState::Up)
            continue;
        os << "  link " << kv.first.first << "->" << kv.first.second
           << ": " << toString(kv.second.state) << " (consecFails="
           << kv.second.consecFails << ", probeInFlight="
           << (kv.second.outstandingProbe != 0 ? "yes" : "no")
           << ")\n";
    }
    return os.str();
}

} // namespace fault
} // namespace dimmlink
