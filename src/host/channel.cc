#include "host/channel.hh"

#include <algorithm>

#include "common/log.hh"

namespace dimmlink {
namespace host {

Channel::Channel(EventQueue &eq, std::string name, double gbps,
                 stats::Group &sg)
    : eventq(eq),
      name_(std::move(name)),
      gbps_(gbps),
      statBytes(sg.scalar("bytes")),
      statBusyPs(sg.scalar("busyPs")),
      statTransfers(sg.scalar("transfers"))
{
    if (gbps <= 0)
        fatal("channel %s: non-positive bandwidth", name_.c_str());
}

Tick
Channel::transfer(std::uint64_t bytes)
{
    const Tick start = std::max(eventq.now(), busyUntil);
    const Tick dur = serializationTicks(bytes, gbps_);
    busyUntil = start + dur;
    statBytes += static_cast<double>(bytes);
    statBusyPs += static_cast<double>(dur);
    ++statTransfers;
    return busyUntil;
}

Tick
Channel::occupy(Tick duration, Tick earliest)
{
    const Tick start = std::max({eventq.now(), busyUntil, earliest});
    busyUntil = start + duration;
    statBusyPs += static_cast<double>(duration);
    ++statTransfers;
    return busyUntil;
}

} // namespace host
} // namespace dimmlink
