#include "host/polling.hh"

#include <algorithm>

#include "common/log.hh"

namespace dimmlink {
namespace host {

PollingEngine::PollingEngine(EventQueue &eq, const SystemConfig &cfg_,
                             std::vector<Channel *> channels_,
                             std::vector<DimmId> targets_,
                             stats::Registry &reg)
    : eventq(eq),
      cfg(cfg_),
      mode(cfg_.pollingMode),
      channels(std::move(channels_)),
      targets(std::move(targets_)),
      statPolls(reg.group("host.polling").scalar("polls")),
      statIdlePolls(reg.group("host.polling").scalar("idlePolls")),
      statInterrupts(reg.group("host.polling").scalar("interrupts")),
      statDiscoveryPs(
          reg.group("host.polling").distribution("discoveryPs")),
      raisedAt(cfg_.numDimms, 0)
{
    if (targets.empty())
        fatal("polling engine needs at least one target DIMM");
    sweepScheduled.assign(channels.size(), false);
}

void
PollingEngine::start()
{
    if (running)
        return;
    running = true;
    if (interruptDriven())
        return;
    // One polling loop per channel that has polled targets.
    std::set<ChannelId> chans;
    for (DimmId t : targets)
        chans.insert(cfg.channelOf(t));
    for (ChannelId ch : chans)
        scheduleSweep(ch, eventq.now());
}

void
PollingEngine::stop()
{
    running = false;
    pendingTargets.clear();
    interruptsInFlight.clear();
}

void
PollingEngine::requestRaised(DimmId target)
{
    if (std::find(targets.begin(), targets.end(), target) ==
        targets.end())
        panic("request raised at DIMM %u which is not a polled target",
              target);
    if (pendingTargets.count(target))
        return;
    pendingTargets.insert(target);
    raisedAt[target] = eventq.now();

    if (!interruptDriven())
        return; // The periodic sweep will find it.

    // ALERT_N is shared per channel: one handler invocation scans the
    // whole channel (Base+Itrpt) or its proxy (P-P+Itrpt).
    const ChannelId ch = cfg.channelOf(target);
    if (interruptsInFlight.count(ch))
        return;
    interruptsInFlight.insert(ch);
    ++statInterrupts;
    eventq.scheduleIn(cfg.host.interruptLatencyPs,
                      [this, ch] { serveInterrupt(ch); },
                      EventPriority::Control);
}

void
PollingEngine::requestsCleared(DimmId target)
{
    pendingTargets.erase(target);
}

Tick
PollingEngine::pollOne(DimmId target, Tick earliest)
{
    Channel &ch = *channels[cfg.channelOf(target)];
    const Tick end = ch.occupy(cfg.host.pollChannelPs, earliest);
    ++statPolls;
    const bool found = pendingTargets.count(target) > 0;
    if (!found) {
        ++statIdlePolls;
        return end;
    }
    pendingTargets.erase(target);
    statDiscoveryPs.sample(static_cast<double>(end - raisedAt[target]));
    eventq.schedule(end,
                    [this, target] {
                        if (running && discoverHandler)
                            discoverHandler(target);
                    },
                    EventPriority::Control);
    return end;
}

void
PollingEngine::scheduleSweep(ChannelId ch, Tick when)
{
    if (sweepScheduled[ch])
        return;
    sweepScheduled[ch] = true;
    eventq.schedule(std::max(when, eventq.now()),
                    [this, ch] {
                        sweepScheduled[ch] = false;
                        sweep(ch);
                    },
                    EventPriority::Control);
}

void
PollingEngine::sweep(ChannelId ch)
{
    if (!running || interruptDriven())
        return;
    // Poll this channel's targets back-to-back, then sleep until the
    // next period. Distinct channels poll concurrently.
    const Tick sweep_start = eventq.now();
    Tick cursor = sweep_start;
    for (DimmId target : targets)
        if (cfg.channelOf(target) == ch)
            cursor = pollOne(target, cursor);
    const Tick next = std::max(sweep_start + cfg.host.pollIntervalPs,
                               cursor);
    scheduleSweep(ch, next);
}

void
PollingEngine::serveInterrupt(ChannelId ch)
{
    interruptsInFlight.erase(ch);
    if (!running)
        return;
    // Scan every polled target that shares the interrupting channel.
    bool more = false;
    Tick cursor = eventq.now();
    for (DimmId target : targets) {
        if (cfg.channelOf(target) != ch)
            continue;
        cursor = pollOne(target, cursor);
    }
    for (DimmId target : pendingTargets)
        if (cfg.channelOf(target) == ch)
            more = true;
    if (more) {
        interruptsInFlight.insert(ch);
        ++statInterrupts;
        eventq.scheduleIn(cfg.host.interruptLatencyPs,
                          [this, ch] { serveInterrupt(ch); },
                          EventPriority::Control);
    }
}

} // namespace host
} // namespace dimmlink
