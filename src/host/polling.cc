#include "host/polling.hh"

#include <algorithm>

#include "common/log.hh"

namespace dimmlink {
namespace host {

PollingEngine::PollingEngine(EventQueue &eq, const SystemConfig &cfg_,
                             std::vector<Channel *> channels_,
                             std::vector<DimmId> targets_,
                             stats::Registry &reg)
    : eventq(eq),
      cfg(cfg_),
      channels(std::move(channels_)),
      targets(std::move(targets_)),
      statInterrupts(reg.group("host.polling").scalar("interrupts")),
      statPolls(reg.group("host.polling").scalar("polls")),
      statIdlePolls(reg.group("host.polling").scalar("idlePolls")),
      statDiscoveryPs(
          reg.group("host.polling").distribution("discoveryPs")),
      raisedAt(cfg_.numDimms, 0)
{
    if (targets.empty())
        fatal("polling engine needs at least one target DIMM");
}

void
PollingEngine::start()
{
    if (running)
        return;
    running = true;
    onStart();
}

void
PollingEngine::stop()
{
    running = false;
    pendingTargets.clear();
    onStop();
}

void
PollingEngine::requestRaised(DimmId target)
{
    if (std::find(targets.begin(), targets.end(), target) ==
        targets.end())
        panic("request raised at DIMM %u which is not a polled target",
              target);
    if (pendingTargets.count(target))
        return;
    pendingTargets.insert(target);
    raisedAt[target] = eventq.now();
    onRequestRaised(target);
}

void
PollingEngine::requestsCleared(DimmId target)
{
    pendingTargets.erase(target);
}

Tick
PollingEngine::pollOne(DimmId target, Tick earliest)
{
    Channel &ch = *channels[cfg.channelOf(target)];
    const Tick end = ch.occupy(cfg.host.pollChannelPs, earliest);
    ++statPolls;
    const bool found = pendingTargets.count(target) > 0;
    if (!found) {
        ++statIdlePolls;
        return end;
    }
    pendingTargets.erase(target);
    statDiscoveryPs.sample(static_cast<double>(end - raisedAt[target]));
    eventq.schedule(end,
                    [this, target] {
                        if (running && discoverHandler)
                            discoverHandler(target);
                    },
                    EventPriority::Control);
    return end;
}

std::unique_ptr<PollingEngine>
makePollingEngine(EventQueue &eq, const SystemConfig &cfg,
                  std::vector<Channel *> channels,
                  std::vector<DimmId> targets, stats::Registry &reg)
{
    return PollingEngineFactory::instance().create(
        toString(cfg.pollingMode), eq, cfg, std::move(channels),
        std::move(targets), reg);
}

} // namespace host
} // namespace dimmlink
