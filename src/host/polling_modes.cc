/**
 * @file
 * The registered polling mechanisms. "Base" and "P-P" share the
 * periodic sweep engine (they differ only in the target set the
 * caller passes); "Base+Itrpt" and "P-P+Itrpt" share the ALERT_N
 * engine the same way.
 */

#include <set>

#include "host/polling.hh"

namespace dimmlink {
namespace host {

namespace {

/** Periodic sweeps: poll every target on a channel back-to-back,
 * then sleep until the next poll interval. */
class PeriodicPollingEngine : public PollingEngine
{
  public:
    PeriodicPollingEngine(EventQueue &eq, const SystemConfig &cfg,
                          std::vector<Channel *> channels_,
                          std::vector<DimmId> targets_,
                          stats::Registry &reg)
        : PollingEngine(eq, cfg, std::move(channels_),
                        std::move(targets_), reg)
    {
        sweepScheduled.assign(channels.size(), false);
    }

    bool interruptDriven() const override { return false; }

  protected:
    void
    onStart() override
    {
        // One polling loop per channel that has polled targets.
        std::set<ChannelId> chans;
        for (DimmId t : targets)
            chans.insert(cfg.channelOf(t));
        for (ChannelId ch : chans)
            scheduleSweep(ch, eventq.now());
    }

    void onRequestRaised(DimmId) override
    {
        // The periodic sweep will find it.
    }

    void onStop() override {}

  private:
    void
    scheduleSweep(ChannelId ch, Tick when)
    {
        if (sweepScheduled[ch])
            return;
        sweepScheduled[ch] = true;
        eventq.schedule(std::max(when, eventq.now()),
                        [this, ch] {
                            sweepScheduled[ch] = false;
                            sweep(ch);
                        },
                        EventPriority::Control);
    }

    void
    sweep(ChannelId ch)
    {
        if (!running)
            return;
        // Poll this channel's targets back-to-back, then sleep until
        // the next period. Distinct channels poll concurrently.
        const Tick sweep_start = eventq.now();
        Tick cursor = sweep_start;
        for (DimmId target : targets)
            if (cfg.channelOf(target) == ch)
                cursor = pollOne(target, cursor);
        const Tick next =
            std::max(sweep_start + cfg.host.pollIntervalPs, cursor);
        scheduleSweep(ch, next);
    }

    /** Per-channel sweep-scheduled flags (the host polls channels in
     * parallel through independent MC queues; Section IV-A notes the
     * single-thread variant costs less CPU but the paper's Fig. 15
     * baseline occupancy corresponds to parallel polling). */
    std::vector<bool> sweepScheduled;
};

/** ALERT_N: the host sleeps until a target raises the shared
 * per-channel interrupt line, then scans that channel's targets. */
class InterruptPollingEngine : public PollingEngine
{
  public:
    using PollingEngine::PollingEngine;

    bool interruptDriven() const override { return true; }

  protected:
    void onStart() override {}

    void
    onRequestRaised(DimmId target) override
    {
        // ALERT_N is shared per channel: one handler invocation scans
        // the whole channel (Base+Itrpt) or its proxy (P-P+Itrpt).
        const ChannelId ch = cfg.channelOf(target);
        if (interruptsInFlight.count(ch))
            return;
        raiseAlert(ch);
    }

    void onStop() override { interruptsInFlight.clear(); }

  private:
    void
    raiseAlert(ChannelId ch)
    {
        interruptsInFlight.insert(ch);
        ++statInterrupts;
        eventq.scheduleIn(cfg.host.interruptLatencyPs,
                          [this, ch] { serveInterrupt(ch); },
                          EventPriority::Control);
    }

    void
    serveInterrupt(ChannelId ch)
    {
        interruptsInFlight.erase(ch);
        if (!running)
            return;
        // Scan every polled target that shares the interrupting
        // channel; re-raise when a request slipped in meanwhile.
        Tick cursor = eventq.now();
        for (DimmId target : targets) {
            if (cfg.channelOf(target) != ch)
                continue;
            cursor = pollOne(target, cursor);
        }
        if (anyPendingOn(ch))
            raiseAlert(ch);
    }

    /** Channels with an ALERT_N raised and a handler in flight. */
    std::set<ChannelId> interruptsInFlight;
};

template <typename Engine>
std::unique_ptr<PollingEngine>
makeEngine(EventQueue &eq, const SystemConfig &cfg,
           std::vector<Channel *> channels, std::vector<DimmId> targets,
           stats::Registry &reg)
{
    return std::make_unique<Engine>(eq, cfg, std::move(channels),
                                    std::move(targets), reg);
}

PollingEngineFactory::Registrar
    regBase("Base", makeEngine<PeriodicPollingEngine>);
PollingEngineFactory::Registrar
    regProxy("P-P", makeEngine<PeriodicPollingEngine>);
PollingEngineFactory::Registrar
    regBaseItrpt("Base+Itrpt", makeEngine<InterruptPollingEngine>);
PollingEngineFactory::Registrar
    regProxyItrpt("P-P+Itrpt", makeEngine<InterruptPollingEngine>);

} // namespace

} // namespace host
} // namespace dimmlink
