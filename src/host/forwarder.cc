#include "host/forwarder.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/tracer.hh"

namespace dimmlink {
namespace host {

Forwarder::Forwarder(EventQueue &eq, const SystemConfig &cfg_,
                     std::vector<Channel *> channels_,
                     stats::Registry &reg)
    : eventq(eq),
      cfg(cfg_),
      channels(std::move(channels_)),
      workerFreeAt(std::max(1u, cfg_.host.pollThreads), 0),
      statForwards(reg.group("host.forwarder").scalar("forwards")),
      statBytes(reg.group("host.forwarder").scalar("bytes")),
      statLatencyPs(
          reg.group("host.forwarder").distribution("latencyPs"))
{
    if (auto *t = eq.tracer(); t && t->enabled(obs::CatHost)) {
        tr = t;
        trk = t->track("host.forwarder", obs::CatHost);
        nmForward = t->intern("forward");
    }
}

void
Forwarder::forward(DimmId src, DimmId dst, unsigned bytes,
                   std::function<void()> delivered)
{
    Job job{src, dst, bytes, std::move(delivered), 0};
    if (tr) {
        job.traceId = tr->nextAsyncId();
        tr->asyncBegin(trk, nmForward, eventq.now(), job.traceId);
    }
    jobs.push_back(std::move(job));
    pump();
}

void
Forwarder::pump()
{
    // Paced, pipelined forwarding: a worker spends forwardIssuePs of
    // host time per packet issuing the copy; the load and store
    // themselves pipeline through the memory-controller queues, so
    // channel time is reserved at most one issue ahead per worker
    // (polling reads never starve behind a speculative backlog).
    while (!jobs.empty()) {
        auto worker = std::min_element(workerFreeAt.begin(),
                                       workerFreeAt.end());
        if (*worker > eventq.now()) {
            if (!pumpScheduled) {
                pumpScheduled = true;
                eventq.schedule(*worker,
                                [this] {
                                    pumpScheduled = false;
                                    pump();
                                },
                                EventPriority::Control);
            }
            return;
        }
        Job job = std::move(jobs.front());
        jobs.pop_front();

        const Tick begin = eventq.now();
        *worker = begin + cfg.host.forwardIssuePs;

        // Load from the source DIMM's channel into the host cache
        // hierarchy...
        Channel &src_ch = *channels[cfg.channelOf(job.src)];
        const Tick loaded =
            src_ch.occupy(serializationTicks(job.bytes,
                                             src_ch.bandwidthGBps()),
                          begin);
        // ... decode the destination id (fixed host latency) ...
        const Tick processed = loaded + cfg.host.forwardLatencyPs;
        // ... and store to the destination DIMM's channel.
        Channel &dst_ch = *channels[cfg.channelOf(job.dst)];
        const Tick stored =
            dst_ch.occupy(serializationTicks(job.bytes,
                                             dst_ch.bandwidthGBps()),
                          processed);

        ++statForwards;
        statBytes += job.bytes;
        statLatencyPs.sample(static_cast<double>(stored - begin));
        if (tr)
            tr->asyncEnd(trk, nmForward, stored, job.traceId);

        if (job.delivered)
            eventq.schedule(stored, std::move(job.delivered),
                            EventPriority::Delivery);
    }
}

} // namespace host
} // namespace dimmlink
