/**
 * @file
 * A host memory channel as a shared bandwidth resource. In NMP-Access
 * mode the channels carry polling reads and forwarded packets; the
 * occupancy statistics feed Fig. 15-(b) and the energy model.
 */

#ifndef DIMMLINK_HOST_CHANNEL_HH
#define DIMMLINK_HOST_CHANNEL_HH

#include <string>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace host {

class Channel
{
  public:
    Channel(EventQueue &eq, std::string name, double gbps,
            stats::Group &sg);

    /** Earliest tick a new transfer can begin. */
    Tick freeAt() const { return busyUntil; }

    /**
     * Occupy the channel for @p bytes starting no earlier than now.
     * @return the completion tick.
     */
    Tick transfer(std::uint64_t bytes);

    /**
     * Occupy the channel for a fixed duration (e.g. an uncached
     * polling read holding the bus), starting no earlier than
     * @p earliest (lets a single host thread serialize reads across
     * different channels). @return the completion tick.
     */
    Tick occupy(Tick duration, Tick earliest = 0);

    double bandwidthGBps() const { return gbps_; }
    const std::string &name() const { return name_; }

    /** Busy picoseconds accumulated so far. */
    double busyPs() const { return statBusyPs.value(); }

  private:
    EventQueue &eventq;
    std::string name_;
    double gbps_;
    Tick busyUntil = 0;

    stats::Scalar &statBytes;
    stats::Scalar &statBusyPs;
    stats::Scalar &statTransfers;
};

} // namespace host
} // namespace dimmlink

#endif // DIMMLINK_HOST_CHANNEL_HH
