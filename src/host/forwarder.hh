/**
 * @file
 * The host-side FWD controller: after polling discovers a request,
 * a host forwarding thread fetches the packet over the source DIMM's
 * channel, decodes the destination, and stores the packet over the
 * destination DIMM's channel (Section III-D, inter-group transmission;
 * also the entire transport of the MCN baseline).
 */

#ifndef DIMMLINK_HOST_FORWARDER_HH
#define DIMMLINK_HOST_FORWARDER_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "host/channel.hh"
#include "sim/event_queue.hh"

namespace dimmlink {

namespace obs {
class Tracer;
} // namespace obs

namespace host {

class Forwarder
{
  public:
    Forwarder(EventQueue &eq, const SystemConfig &cfg,
              std::vector<Channel *> channels, stats::Registry &reg);

    /**
     * Move @p bytes of packet data from @p src DIMM to @p dst DIMM
     * through the host. @p delivered fires once the data has been
     * written into the destination DIMM's packet buffer.
     */
    void forward(DimmId src, DimmId dst, unsigned bytes,
                 std::function<void()> delivered);

    /**
     * Host-performed remote access for the MCN-style baselines: the
     * host reads @p bytes from @p src DIMM's buffer and pushes them to
     * the requester, or vice versa. Same cost structure as forward().
     */
    void
    copy(DimmId src, DimmId dst, unsigned bytes,
         std::function<void()> delivered)
    {
        forward(src, dst, bytes, std::move(delivered));
    }

    /** Jobs waiting for a forwarding thread. */
    std::size_t backlog() const { return jobs.size(); }

  private:
    struct Job
    {
        DimmId src;
        DimmId dst;
        unsigned bytes;
        std::function<void()> delivered;
        std::uint64_t traceId = 0;
    };

    void pump();

    bool pumpScheduled = false;
    EventQueue &eventq;
    const SystemConfig &cfg;
    std::vector<Channel *> channels;
    std::deque<Job> jobs;
    /** Busy-until tick of each host forwarding thread. */
    std::vector<Tick> workerFreeAt;

    stats::Scalar &statForwards;
    stats::Scalar &statBytes;
    stats::Distribution &statLatencyPs;

    obs::Tracer *tr = nullptr; ///< Null unless host tracing is on.
    std::uint32_t trk = 0;
    std::uint16_t nmForward = 0;
};

} // namespace host
} // namespace dimmlink

#endif // DIMMLINK_HOST_FORWARDER_HH
