/**
 * @file
 * The four host polling mechanisms of Table III. The engine models
 * when the host CPU learns that a DIMM holds forwarding requests, and
 * charges every polling read's bus occupancy to the right channel —
 * including the idle polling that never finds a request (the cost the
 * polling proxy exists to remove).
 */

#ifndef DIMMLINK_HOST_POLLING_HH
#define DIMMLINK_HOST_POLLING_HH

#include <functional>
#include <set>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "host/channel.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace host {

class PollingEngine
{
  public:
    /**
     * @param targets  DIMMs the host polls (all DIMMs under Baseline;
     *                 one proxy per group under the proxy schemes).
     */
    PollingEngine(EventQueue &eq, const SystemConfig &cfg,
                  std::vector<Channel *> channels,
                  std::vector<DimmId> targets, stats::Registry &reg);

    /** Called with a polled DIMM id once the host notices it has
     * pending requests. */
    void setDiscoverHandler(std::function<void(DimmId)> h)
    {
        discoverHandler = std::move(h);
    }

    /** Enter NMP-Access mode: background polling begins. */
    void start();

    /** Leave NMP-Access mode: polling stops. */
    void stop();

    /**
     * A forwarding request is now pending at polled target @p target.
     * Under interrupt modes this raises ALERT_N on the target's
     * channel; otherwise the next sweep discovers it.
     */
    void requestRaised(DimmId target);

    /** The target's requests were drained by the forwarder. */
    void requestsCleared(DimmId target);

    bool interruptDriven() const
    {
        return mode == PollingMode::BaselineInterrupt ||
               mode == PollingMode::ProxyInterrupt;
    }

  private:
    void scheduleSweep(ChannelId ch, Tick when);
    void sweep(ChannelId ch);
    /** One polling read of @p target, starting no earlier than
     * @p earliest. @return the read's completion tick. */
    Tick pollOne(DimmId target, Tick earliest);
    void serveInterrupt(ChannelId ch);

    EventQueue &eventq;
    const SystemConfig &cfg;
    PollingMode mode;
    std::vector<Channel *> channels;
    std::vector<DimmId> targets;

    bool running = false;
    /** Per-channel sweep-scheduled flags (the host polls channels in
     * parallel through independent MC queues; Section IV-A notes the
     * single-thread variant costs less CPU but the paper's Fig. 15
     * baseline occupancy corresponds to parallel polling). */
    std::vector<bool> sweepScheduled;
    std::set<DimmId> pendingTargets;
    /** Channels with an ALERT_N raised and a handler in flight. */
    std::set<ChannelId> interruptsInFlight;

    std::function<void(DimmId)> discoverHandler;

    stats::Scalar &statPolls;
    stats::Scalar &statIdlePolls;
    stats::Scalar &statInterrupts;
    stats::Distribution &statDiscoveryPs;
    /** Tick at which each pending target raised its request. */
    std::vector<Tick> raisedAt;
};

} // namespace host
} // namespace dimmlink

#endif // DIMMLINK_HOST_POLLING_HH
