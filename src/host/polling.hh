/**
 * @file
 * The four host polling mechanisms of Table III. The engine models
 * when the host CPU learns that a DIMM holds forwarding requests, and
 * charges every polling read's bus occupancy to the right channel —
 * including the idle polling that never finds a request (the cost the
 * polling proxy exists to remove).
 *
 * PollingEngine is the shared machinery (the polling reads, discovery
 * accounting, pending-target bookkeeping); how the host *learns* that
 * a target needs attention is the pluggable part. The periodic modes
 * ("Base", "P-P") sweep each channel's targets every poll interval;
 * the ALERT_N modes ("Base+Itrpt", "P-P+Itrpt") sleep until a target
 * raises the shared interrupt line. Implementations register under
 * the PollingMode toString() names; build one with
 * makePollingEngine().
 */

#ifndef DIMMLINK_HOST_POLLING_HH
#define DIMMLINK_HOST_POLLING_HH

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/config.hh"
#include "common/factory.hh"
#include "common/stats.hh"
#include "host/channel.hh"
#include "sim/event_queue.hh"

namespace dimmlink {
namespace host {

class PollingEngine
{
  public:
    /**
     * @param targets  DIMMs the host polls (all DIMMs under Baseline;
     *                 one proxy per group under the proxy schemes).
     */
    PollingEngine(EventQueue &eq, const SystemConfig &cfg,
                  std::vector<Channel *> channels,
                  std::vector<DimmId> targets, stats::Registry &reg);

    virtual ~PollingEngine() = default;

    /** Called with a polled DIMM id once the host notices it has
     * pending requests. */
    void setDiscoverHandler(std::function<void(DimmId)> h)
    {
        discoverHandler = std::move(h);
    }

    /** Enter NMP-Access mode: background polling begins. */
    void start();

    /** Leave NMP-Access mode: polling stops. */
    void stop();

    /**
     * A forwarding request is now pending at polled target @p target.
     * Under interrupt modes this raises ALERT_N on the target's
     * channel; otherwise the next sweep discovers it.
     */
    void requestRaised(DimmId target);

    /** The target's requests were drained by the forwarder. */
    void requestsCleared(DimmId target);

    /** True when ALERT_N wakes the host instead of a periodic sweep. */
    virtual bool interruptDriven() const = 0;

  protected:
    /** Begin the mode's discovery machinery (engine just started). */
    virtual void onStart() = 0;

    /** React to a newly pending target (engine is running). */
    virtual void onRequestRaised(DimmId target) = 0;

    /** Drop any in-flight discovery state (engine just stopped). */
    virtual void onStop() = 0;

    /** One polling read of @p target, starting no earlier than
     * @p earliest. @return the read's completion tick. */
    Tick pollOne(DimmId target, Tick earliest);

    /** True when any pending target sits on channel @p ch. */
    bool anyPendingOn(ChannelId ch) const
    {
        for (DimmId t : pendingTargets)
            if (cfg.channelOf(t) == ch)
                return true;
        return false;
    }

    EventQueue &eventq;
    const SystemConfig &cfg;
    std::vector<Channel *> channels;
    std::vector<DimmId> targets;

    bool running = false;

    stats::Scalar &statInterrupts;

  private:
    std::set<DimmId> pendingTargets;

    std::function<void(DimmId)> discoverHandler;

    stats::Scalar &statPolls;
    stats::Scalar &statIdlePolls;
    stats::Distribution &statDiscoveryPs;
    /** Tick at which each pending target raised its request. */
    std::vector<Tick> raisedAt;
};

using PollingEngineFactory =
    Factory<PollingEngine, EventQueue &, const SystemConfig &,
            std::vector<Channel *>, std::vector<DimmId>,
            stats::Registry &>;

/**
 * Build the engine registered under toString(cfg.pollingMode) for the
 * given polled @p targets.
 */
std::unique_ptr<PollingEngine>
makePollingEngine(EventQueue &eq, const SystemConfig &cfg,
                  std::vector<Channel *> channels,
                  std::vector<DimmId> targets, stats::Registry &reg);

} // namespace host

template <>
struct FactoryTraits<host::PollingEngine>
{
    static constexpr const char *noun = "polling mode";
};

} // namespace dimmlink

#endif // DIMMLINK_HOST_POLLING_HH
