#include "dimm/local_mc.hh"

#include "common/bitfield.hh"
#include "common/log.hh"

namespace dimmlink {

LocalMc::LocalMc(EventQueue &eq, const std::string &name, DimmId self_,
                 const SystemConfig &cfg_, const dram::Timing &timing,
                 const dram::GlobalAddressMap &gmap_,
                 stats::Registry &reg)
    : eventq(eq),
      self(self_),
      cfg(cfg_),
      gmap(gmap_),
      lineBytes(cfg_.dimm.lineBytes),
      statLocalReads(reg.group(name).scalar("localReads")),
      statLocalWrites(reg.group(name).scalar("localWrites")),
      statRemoteReads(reg.group(name).scalar("remoteReads")),
      statRemoteWrites(reg.group(name).scalar("remoteWrites")),
      statLocalBytes(reg.group(name).scalar("localBytes")),
      statRemoteBytes(reg.group(name).scalar("remoteBytes"))
{
    for (unsigned r = 0; r < cfg.dimm.numRanks; ++r) {
        const std::string cname = name + ".rank" + std::to_string(r);
        rankCtrl.push_back(std::make_unique<dram::DramController>(
            eq, cname, timing, /*num_ranks=*/1, lineBytes,
            reg.group(cname), cfg.dramScheduler));
        rankCtrl.back()->setUnblockCallback([this] { drainPending(); });
    }
}

unsigned
LocalMc::rankOf(Addr local) const
{
    return static_cast<unsigned>((local / lineBytes) %
                                 cfg.dimm.numRanks);
}

Addr
LocalMc::ctrlAddr(Addr local) const
{
    // De-interleave: strip the rank bits from the line index.
    const Addr line_idx = local / lineBytes;
    return (line_idx / cfg.dimm.numRanks) * lineBytes;
}

void
LocalMc::enqueueLine(Addr line_addr, bool is_write,
                     EventCallback done)
{
    dram::DramController &ctrl = *rankCtrl[rankOf(line_addr)];
    if (ctrl.full(is_write)) {
        // Controller queue full: park in the transaction buffer; the
        // unblock callback drains it.
        pending.push_back(PendingLine{line_addr, is_write,
                                      std::move(done)});
        return;
    }
    dram::DramRequest req;
    req.local = ctrlAddr(line_addr);
    req.isWrite = is_write;
    req.done = std::move(done);
    if (!ctrl.enqueue(std::move(req)))
        panic("DRAM controller rejected a request it said fit");
}

void
LocalMc::drainPending()
{
    while (!pending.empty()) {
        PendingLine &p = pending.front();
        dram::DramController &ctrl = *rankCtrl[rankOf(p.local)];
        if (ctrl.full(p.isWrite))
            return;
        dram::DramRequest req;
        req.local = ctrlAddr(p.local);
        req.isWrite = p.isWrite;
        req.done = std::move(p.done);
        ctrl.enqueue(std::move(req));
        pending.pop_front();
    }
}

void
LocalMc::dramAccess(Addr local, std::uint32_t bytes, bool is_write,
                    std::function<void()> done)
{
    const Addr first = roundDown(local, lineBytes);
    const Addr last = roundDown(local + bytes - 1, lineBytes);
    const auto lines =
        static_cast<std::size_t>((last - first) / lineBytes) + 1;

    auto remaining = std::make_shared<std::size_t>(lines);
    auto done_sh =
        std::make_shared<std::function<void()>>(std::move(done));
    for (Addr a = first; a <= last; a += lineBytes) {
        enqueueLine(a, is_write, [remaining, done_sh] {
            if (--*remaining == 0 && *done_sh)
                (*done_sh)();
        });
    }
}

void
LocalMc::access(Addr global, std::uint32_t bytes, bool is_write,
                std::function<void()> done)
{
    const DimmId target = gmap.dimmOf(global);
    if (target == self) {
        if (is_write) {
            ++statLocalWrites;
        } else {
            ++statLocalReads;
        }
        statLocalBytes += bytes;
        dramAccess(gmap.localOf(global), bytes, is_write,
                   std::move(done));
        return;
    }

    if (!fabric)
        panic("dimm%u: remote access with no IDC fabric wired", self);
    if (is_write) {
        ++statRemoteWrites;
    } else {
        ++statRemoteReads;
    }
    statRemoteBytes += bytes;

    idc::Transaction t;
    t.type = is_write ? idc::Transaction::Type::RemoteWrite
                      : idc::Transaction::Type::RemoteRead;
    t.src = self;
    t.dst = target;
    t.addr = gmap.localOf(global);
    t.bytes = bytes;
    t.onComplete = std::move(done);
    fabric->submit(std::move(t));
}

void
LocalMc::remoteAccess(Addr local, std::uint32_t bytes, bool is_write,
                      std::function<void()> done)
{
    if (is_write) {
        ++statLocalWrites;
    } else {
        ++statLocalReads;
    }
    statLocalBytes += bytes;
    dramAccess(local, bytes, is_write, std::move(done));
}

void
LocalMc::postedWrite(Addr global, std::uint32_t bytes)
{
    access(global, bytes, /*is_write=*/true, nullptr);
}

bool
LocalMc::idle() const
{
    if (!pending.empty())
        return false;
    for (const auto &c : rankCtrl)
        if (!c->idle())
            return false;
    return true;
}

} // namespace dimmlink
