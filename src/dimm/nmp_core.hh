/**
 * @file
 * An NMP core in the DIMM's centralized buffer chip. Executes one
 * software thread's operation stream with a bounded window of
 * outstanding memory requests, private-L1 / shared-L2 caching under
 * software-assisted coherence, and direct measurement of the paper's
 * "non-overlapped IDC cycles" (stall time attributable to remote
 * requests).
 */

#ifndef DIMMLINK_DIMM_NMP_CORE_HH
#define DIMMLINK_DIMM_NMP_CORE_HH

#include <functional>
#include <memory>

#include "common/config.hh"
#include "common/stats.hh"
#include "dimm/cache.hh"
#include "dimm/local_mc.hh"
#include "dimm/op.hh"
#include "dimm/reliability.hh"
#include "sim/clocked.hh"
#include "sync/barrier.hh"

namespace dimmlink {

namespace obs {
class Tracer;
} // namespace obs

class NmpCore : public Clocked
{
  public:
    NmpCore(EventQueue &eq, const std::string &name, DimmId dimm,
            CoreId core, const SystemConfig &cfg, LocalMc &mc,
            Cache *l1, Cache *l2, stats::Registry &reg);

    void setBarrier(BarrierEndpoint *b) { barrier = b; }

    /** Explicit broadcast API (wired by the Dimm to the fabric). */
    using BroadcastFn =
        std::function<void(Addr, std::uint64_t, std::function<void()>)>;
    void setBroadcaster(BroadcastFn f) { broadcaster = std::move(f); }

    /** Per-reference traffic probe for the task-mapping profiler. */
    using TrafficProbe =
        std::function<void(ThreadId, DimmId, std::uint32_t)>;
    void setTrafficProbe(TrafficProbe p) { probe = std::move(p); }

    /** Home DIMM lookup for probe/stall attribution. */
    using HomeFn = std::function<DimmId(Addr)>;
    void setHomeLookup(HomeFn f) { homeOf = std::move(f); }

    /**
     * Asynchronous op fetch for the sharded kernel: when set, the
     * core never resumes its ThreadProgram directly -- it hands the
     * program to the source and continues when the next Op is
     * delivered back (the ShardSet's sequenced-call oracle, which
     * resumes every program on one thread in a deterministic order;
     * see docs/parallel_kernel.md). Workload generators may read and
     * write state shared across threads, so resuming them from
     * concurrent shards would race.
     */
    using OpSource =
        std::function<void(ThreadProgram *, std::function<void(Op)>)>;
    void setOpSource(OpSource s) { opSource = std::move(s); }

    /**
     * Arm the request-level reliability engine (docs/serving.md):
     * deadlines, retry/backoff behind the circuit breaker, hedging
     * and load shedding. @p view is this core's shard-local host
     * health view (null on single-host systems: the breaker then
     * never trips) and @p my_host the host owning this DIMM. All
     * pointees outlive the core (System owns them).
     */
    void
    setReliability(const serve_rel::Params *params,
                   const serve_rel::HostHealthView *view,
                   unsigned my_host)
    {
        rel = params;
        hostView = view;
        myHost = my_host;
    }

    /** Launch a thread; @p on_done fires after its Done op retires. */
    void run(ThreadId tid, std::unique_ptr<ThreadProgram> prog,
             std::function<void()> on_done);

    /** Abort the current thread (migration-by-restart, §IV-B). */
    void cancel();

    bool busy() const { return state != State::Idle; }
    DimmId dimmId() const { return dimm; }
    CoreId coreId() const { return core; }
    ThreadId threadId() const { return tid_; }

    /** Non-overlapped IDC picoseconds (remote-attributed stalls). */
    double idcStallPs() const { return statStallRemote.value(); }

  private:
    enum class State {
        Idle,
        Ready,     ///< advance() is driving the op stream.
        Computing, ///< Busy for a compute (or issue-debt) interval.
        StallMshr, ///< Out of MSHRs; waiting for any response.
        Fence,     ///< Draining all outstanding requests.
        Barrier,   ///< Waiting for barrier release.
        Broadcast, ///< Waiting for broadcast completion.
        FetchOp,   ///< Waiting for the async op source to deliver.
        Waiting,   ///< Idle until an open-loop request's arrival.
        Backoff,   ///< Reliability: delaying a retry after fast-fail.
        HedgeFence,///< Reliability: racing primary vs hedge fanouts.
    };

    void advance();
    void issueRef(const MemRef &ref);
    void onResponse(bool was_remote, unsigned side);
    void onStaleResponse();
    void enterStall(State s);
    void exitStall();
    void finishOp();

    // Reliability engine (no-ops unless setReliability armed it).
    bool relReqStart();
    void ensureRelStats();
    void abortInFlight();
    void launchHedge();
    void settleHedge(unsigned winner);

    DimmId dimm;
    CoreId core;
    const SystemConfig &cfg;
    LocalMc &mc;
    Cache *l1;
    Cache *l2;
    BarrierEndpoint *barrier = nullptr;
    BroadcastFn broadcaster;
    TrafficProbe probe;
    HomeFn homeOf;
    OpSource opSource;

    State state = State::Idle;
    std::unique_ptr<ThreadProgram> prog;
    ThreadId tid_ = 0;
    std::function<void()> onDone;
    std::uint64_t runGeneration = 0;

    Op op;
    std::size_t refIdx = 0;
    bool haveOp = false;
    std::uint64_t issueDebt = 0;

    unsigned outstanding = 0;
    unsigned remoteOutstanding = 0;
    Tick stallStart = 0;
    bool stallRemote = false;
    bool barrierAfterFence = false;
    bool broadcastAfterFence = false;

    /** Tick this thread's run() began (serving arrivals are relative
     * to it) and the in-flight request's latency-clock start. */
    Tick runStart = 0;
    Tick reqStart = 0;

    // --- Request-level reliability state (single-writer: only this
    // core's shard touches it). Dormant until setReliability().
    const serve_rel::Params *rel = nullptr;
    const serve_rel::HostHealthView *hostView = nullptr;
    unsigned myHost = 0;
    serve_rel::Backoff backoff;
    serve_rel::CircuitBreaker breaker;
    /** MSHR slots leaked by aborted/hedge-losing fanouts: their
     * responses are still in flight (and still occupy MSHRs, so the
     * issue cap counts them) but no longer gate fences. */
    unsigned stale = 0;
    /** Bumped whenever in-flight responses are disowned; a response
     * whose captured epoch mismatches takes the stale path. */
    std::uint64_t issueEpoch = 0;
    /** Identifies the current request to deadline/hedge timers. */
    std::uint64_t reqSeq = 0;
    bool reqInProgress = false;
    bool reqAborted = false;
    bool shedChecked = false;
    bool deadlineArmed = false;
    bool reqIsTrial = false;   ///< Breaker half-open trial request.
    int breakerTarget = -1;    ///< Host the breaker admitted us to.
    unsigned attempts = 0;     ///< Fast-fail retries so far.
    bool hedgeLaunched = false;
    unsigned issueSide = 0;    ///< 0 = primary, 1 = hedge fanout.
    unsigned outSide[2] = {0, 0};
    unsigned remoteSide[2] = {0, 0};

    /** Lazily created with the first reliability ReqStart, so every
     * run with the layer off keeps byte-identical stats output. */
    stats::Scalar *relDeadlineMiss = nullptr;
    stats::Scalar *relShed = nullptr;
    stats::Scalar *relRetries = nullptr;
    stats::Scalar *relFastFails = nullptr;
    stats::Scalar *relFailed = nullptr;
    stats::Scalar *relHedges = nullptr;
    stats::Scalar *relHedgeWins = nullptr;

    stats::Scalar &statInstructions;
    stats::Scalar &statMemRefs;
    stats::Scalar &statRemoteRefs;
    stats::Scalar &statComputePs;
    stats::Scalar &statStallLocal;
    stats::Scalar &statStallRemote;
    stats::Scalar &statBarrierPs;
    stats::Scalar &statBroadcasts;
    stats::Scalar &statRequests;
    stats::Scalar &statReqWaitPs;
    /** The core's stat group, kept for the lazily-created request-
     * latency histogram: creating it only when a serving workload
     * actually retires a request keeps every non-serving run's stats
     * output byte-identical to builds without the serving frontend. */
    stats::Group &statGroup;
    stats::Histogram *reqHist = nullptr;

    obs::Tracer *tr = nullptr; ///< Null unless core tracing is on.
    std::uint32_t trk = 0;
    std::uint16_t nmCompute = 0, nmStallLocal = 0, nmStallRemote = 0,
                  nmBarrier = 0, nmBroadcast = 0;
};

} // namespace dimmlink

#endif // DIMMLINK_DIMM_NMP_CORE_HH
