/**
 * @file
 * Request-level reliability primitives for the serving frontend
 * (docs/serving.md): resolved knob set, deterministic retry backoff,
 * a per-core circuit breaker over rack-route health, and the
 * shard-local host-health view the breaker consults.
 *
 * Everything here is plain single-writer state: each NmpCore owns its
 * Backoff and CircuitBreaker, and each shard owns one HostHealthView
 * updated only through its own event queue, so chaos runs stay
 * byte-identical across sim.threads.
 */

#ifndef DIMMLINK_DIMM_RELIABILITY_HH
#define DIMMLINK_DIMM_RELIABILITY_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace dimmlink {

struct ServeConfig;

namespace serve_rel {

/** The serve.* reliability knobs resolved to ticks. */
struct Params
{
    Tick deadlinePs = 0;      ///< 0 = no deadlines.
    Tick hedgeAfterPs = 0;    ///< 0 = no hedging.
    Tick backoffPs = 0;       ///< Base retry delay.
    Tick breakerReopenPs = 0; ///< Open -> half-open penalty window.
    unsigned maxRetries = 0;
    unsigned maxInflight = 0; ///< 0 = never shed.

    bool
    enabled() const
    {
        return deadlinePs > 0 || hedgeAfterPs > 0 || maxRetries > 0 ||
               maxInflight > 0;
    }

    static Params from(const ServeConfig &serve);
};

/**
 * Exponential backoff with deterministic jitter. The stream is
 * reseeded per run from (serve.seed, tid) exactly like the arrival
 * streams, so retry timing is reproducible and thread-count
 * invariant.
 */
class Backoff
{
  public:
    /** Reseed for a thread's run. */
    void
    reseed(std::uint64_t seed, unsigned tid)
    {
        rng = Rng((seed ^ 0x5e11ab1e5e11ab1eull) * 1000003 + tid);
    }

    /** Delay before retry number @p attempt (1-based): the base
     * doubles per attempt and jitter keeps the draw within
     * [span/2, span], decorrelating colliding retriers. */
    Tick
    delay(Tick base_ps, unsigned attempt)
    {
        const unsigned shift = attempt > 16 ? 16 : attempt - 1;
        const Tick span = base_ps << shift;
        const Tick half = span / 2;
        return half + static_cast<Tick>(rng.next() % (span - half + 1));
    }

  private:
    Rng rng;
};

/**
 * Per-core circuit breaker keyed by target host. Closed admits
 * everything; a request routed at a host whose rack routes are all
 * down trips it Open, and fast-fails follow without touching the
 * fabric until the reopen penalty elapses AND the route looks up
 * again, when one trial request is admitted half-open. Its success
 * closes the breaker; its failure re-opens with a fresh penalty.
 */
class CircuitBreaker
{
  public:
    enum class Decision : std::uint8_t { Admit, AdmitTrial, FastFail };

    Decision admit(unsigned host, bool route_up, Tick now,
                   Tick penalty_ps);

    /** Report the fate of an admitted trial request. */
    void onOutcome(unsigned host, bool success, Tick now,
                   Tick penalty_ps);

  private:
    enum class State : std::uint8_t { Closed, Open, HalfOpen };
    struct Entry
    {
        State state = State::Closed;
        Tick reopenAt = 0;
        bool trialInFlight = false;
    };

    Entry &entry(unsigned host);

    std::vector<Entry> hosts;
};

/**
 * One shard's view of rack host availability, fed from the rack
 * fabric's LinkHealth transitions (delivered per shard through its
 * own queue). routeUp() mirrors DlFabric::hostPathSend's failover:
 * a cross-host request has a live route while EITHER both rack ports
 * (forwarded path) or both gateway bridges (pooled path) are up.
 */
struct HostHealthView
{
    std::vector<std::uint8_t> portUp; ///< Per host, rack port alive.
    std::vector<std::uint8_t> gwUp;   ///< Per host, pooled lanes alive.

    explicit HostHealthView(unsigned num_hosts = 0)
        : portUp(num_hosts, 1), gwUp(num_hosts, 1)
    {}

    bool
    routeUp(unsigned a, unsigned b) const
    {
        if (a == b || a >= portUp.size() || b >= portUp.size())
            return true;
        return (portUp[a] && portUp[b]) || (gwUp[a] && gwUp[b]);
    }
};

} // namespace serve_rel
} // namespace dimmlink

#endif // DIMMLINK_DIMM_RELIABILITY_HH
