#include "dimm/nmp_core.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/log.hh"
#include "obs/tracer.hh"

namespace dimmlink {

NmpCore::NmpCore(EventQueue &eq, const std::string &name, DimmId dimm_,
                 CoreId core_, const SystemConfig &cfg_, LocalMc &mc_,
                 Cache *l1_, Cache *l2_, stats::Registry &reg)
    : Clocked(eq, name, cfg_.dimm.coreFreqMHz),
      dimm(dimm_),
      core(core_),
      cfg(cfg_),
      mc(mc_),
      l1(l1_),
      l2(l2_),
      statInstructions(reg.group(name).scalar("instructions")),
      statMemRefs(reg.group(name).scalar("memRefs")),
      statRemoteRefs(reg.group(name).scalar("remoteRefs")),
      statComputePs(reg.group(name).scalar("computePs")),
      statStallLocal(reg.group(name).scalar("stallLocalPs")),
      statStallRemote(reg.group(name).scalar("stallRemotePs")),
      statBarrierPs(reg.group(name).scalar("barrierPs")),
      statBroadcasts(reg.group(name).scalar("broadcasts")),
      statRequests(reg.group(name).scalar("requests")),
      statReqWaitPs(reg.group(name).scalar("reqWaitPs")),
      statGroup(reg.group(name))
{
    if (auto *t = eq.tracer(); t && t->enabled(obs::CatCore)) {
        tr = t;
        trk = t->track(name, obs::CatCore);
        nmCompute = t->intern("compute");
        nmStallLocal = t->intern("stallLocal");
        nmStallRemote = t->intern("stallRemote");
        nmBarrier = t->intern("barrier");
        nmBroadcast = t->intern("broadcast");
    }
}

void
NmpCore::run(ThreadId tid, std::unique_ptr<ThreadProgram> program,
             std::function<void()> on_done)
{
    if (state != State::Idle)
        panic("%s: run() while core is busy", name().c_str());
    ++runGeneration;
    prog = std::move(program);
    tid_ = tid;
    onDone = std::move(on_done);
    haveOp = false;
    refIdx = 0;
    issueDebt = 0;
    outstanding = 0;
    remoteOutstanding = 0;
    runStart = now();
    reqStart = now();
    stale = 0;
    reqInProgress = false;
    reqAborted = false;
    reqIsTrial = false;
    breakerTarget = -1;
    hedgeLaunched = false;
    issueSide = 0;
    outSide[0] = outSide[1] = 0;
    remoteSide[0] = remoteSide[1] = 0;
    if (rel)
        backoff.reseed(cfg.serve.seed, tid);
    state = State::Ready;
    // Start on the next clock edge.
    const auto gen = runGeneration;
    queue().schedule(clockEdge(),
                     [this, gen] {
                         if (gen == runGeneration)
                             advance();
                     },
                     EventPriority::Core);
}

void
NmpCore::cancel()
{
    ++runGeneration;
    state = State::Idle;
    prog.reset();
    onDone = nullptr;
    haveOp = false;
    outstanding = 0;
    remoteOutstanding = 0;
    issueDebt = 0;
    stale = 0;
    reqInProgress = false;
    reqAborted = false;
    outSide[0] = outSide[1] = 0;
    remoteSide[0] = remoteSide[1] = 0;
}

void
NmpCore::finishOp()
{
    haveOp = false;
    refIdx = 0;
}

void
NmpCore::enterStall(State s)
{
    state = s;
    stallStart = now();
    stallRemote = remoteOutstanding > 0;
}

void
NmpCore::exitStall()
{
    const Tick dt = now() - stallStart;
    if (stallRemote)
        statStallRemote += static_cast<double>(dt);
    else
        statStallLocal += static_cast<double>(dt);
    if (tr && dt > 0)
        tr->complete(trk, stallRemote ? nmStallRemote : nmStallLocal,
                     stallStart, dt);
    state = State::Ready;
}

void
NmpCore::onResponse(bool was_remote, unsigned side)
{
    if (outstanding == 0)
        panic("%s: response with no outstanding request",
              name().c_str());
    --outstanding;
    if (was_remote) {
        if (remoteOutstanding == 0)
            panic("%s: remote response accounting underflow",
                  name().c_str());
        --remoteOutstanding;
    }
    if (rel) {
        if (outSide[side] == 0)
            panic("%s: side accounting underflow", name().c_str());
        --outSide[side];
        if (was_remote)
            --remoteSide[side];
    }

    if (state == State::StallMshr) {
        exitStall();
        advance();
    } else if (state == State::Fence && outstanding == 0) {
        exitStall();
        advance();
    } else if (state == State::HedgeFence && outSide[side] == 0) {
        settleHedge(side);
    }
}

/** A disowned response landed: its request was aborted (or lost a
 * hedge race), so it frees an MSHR slot and nothing else. */
void
NmpCore::onStaleResponse()
{
    if (stale == 0)
        panic("%s: stale response accounting underflow",
              name().c_str());
    --stale;
    if (state == State::StallMshr) {
        exitStall();
        advance();
    }
}

void
NmpCore::issueRef(const MemRef &ref)
{
    ++statMemRefs;
    ++statInstructions;
    const DimmId home = homeOf ? homeOf(ref.addr) : dimm;
    const bool remote = home != dimm;
    if (remote)
        ++statRemoteRefs;
    if (probe)
        probe(tid_, home, ref.bytes);

    const auto gen = runGeneration;
    // Responses carry the issue epoch of their fanout: an abort or a
    // lost hedge race disowns in-flight requests by bumping the
    // epoch, and mismatched responses only free their MSHR slot.
    auto response = [this, gen, epoch = issueEpoch, side = issueSide,
                     remote] {
        if (gen != runGeneration)
            return;
        if (epoch != issueEpoch) {
            onStaleResponse();
            return;
        }
        onResponse(remote, side);
    };
    const auto noteIssued = [this, remote] {
        ++outstanding;
        if (remote)
            ++remoteOutstanding;
        if (rel) {
            ++outSide[issueSide];
            if (remote)
                ++remoteSide[issueSide];
        }
    };

    // Software-assisted coherence: shared read-write data bypasses the
    // NMP caches entirely (Section III-E).
    const bool cacheable = ref.cls != DataClass::SharedRW && l1;
    if (!cacheable) {
        noteIssued();
        mc.access(ref.addr, ref.bytes, ref.isWrite,
                  std::move(response));
        return;
    }

    const unsigned line = l1->lineBytes();
    const Addr line_addr = roundDown(ref.addr, line);
    const bool shared_ro = ref.cls == DataClass::SharedRO;

    const Cache::Result r1 = l1->access(ref.addr, ref.isWrite,
                                        shared_ro);
    if (r1.hit)
        return; // Pipelined L1 hit.

    if (r1.writeback) {
        // Dirty victim drops into the shared L2 (or memory).
        if (l2) {
            const Cache::Result rwb = l2->access(r1.victimAddr, true);
            if (rwb.writeback)
                mc.postedWrite(rwb.victimAddr, line);
        } else {
            mc.postedWrite(r1.victimAddr, line);
        }
    }

    if (l2) {
        // Fill path: the L2 allocation is clean; dirtiness arrives
        // only through L1 writebacks.
        const Cache::Result r2 = l2->access(ref.addr, false,
                                            shared_ro);
        if (r2.hit) {
            noteIssued();
            queue().scheduleIn(cfg.dimm.l2LatencyPs,
                               std::move(response),
                               EventPriority::Delivery);
            return;
        }
        if (r2.writeback)
            mc.postedWrite(r2.victimAddr, line);
    }

    // Miss to memory: fetch the whole line from its home DIMM.
    noteIssued();
    mc.access(line_addr, line, /*is_write=*/false,
              std::move(response));
}

void
NmpCore::ensureRelStats()
{
    if (relDeadlineMiss)
        return;
    // Created together, at the first reliability ReqStart: batch
    // runs (and serving runs with the layer off) keep byte-identical
    // stats output to builds that predate the layer.
    relDeadlineMiss = &statGroup.scalar("reqDeadlineMisses");
    relShed = &statGroup.scalar("reqShed");
    relRetries = &statGroup.scalar("reqRetries");
    relFastFails = &statGroup.scalar("reqFastFails");
    relFailed = &statGroup.scalar("reqFailed");
    relHedges = &statGroup.scalar("reqHedges");
    relHedgeWins = &statGroup.scalar("reqHedgeWins");
}

/**
 * Dispatch the current ReqStart op under the reliability engine.
 * Re-entrant: arrival waits and retry backoffs park the core and
 * re-enter the same op, with the phase flags recording what already
 * ran. Returns true when the op retired (caller continues the op
 * loop) and false when the core parked waiting for a timer.
 */
bool
NmpCore::relReqStart()
{
    if (reqAborted) {
        // An abort raced ahead of this re-entry; just consume it.
        finishOp();
        return true;
    }
    if (!reqInProgress) {
        reqInProgress = true;
        shedChecked = false;
        deadlineArmed = false;
        reqIsTrial = false;
        breakerTarget = -1;
        attempts = 0;
        ++reqSeq;
        ensureRelStats();
        reqStart = op.tickArg == Op::reqNow ? now()
                                            : runStart + op.tickArg;
    }
    if (reqStart > now()) {
        statReqWaitPs += static_cast<double>(reqStart - now());
        state = State::Waiting;
        const auto gen = runGeneration;
        queue().schedule(reqStart,
                         [this, gen] {
                             if (gen != runGeneration ||
                                 state != State::Waiting)
                                 return;
                             state = State::Ready;
                             advance(); // Re-enters this op.
                         },
                         EventPriority::Core);
        return false;
    }
    if (!shedChecked) {
        shedChecked = true;
        // Admission control: the shed horizon is the arrival of the
        // serve.maxInflight'th later request on this thread, so
        // being picked up past it means the queue is at least that
        // deep -- shed instead of serving a hopeless straggler.
        if (op.tickArg2 != 0 && now() >= runStart + op.tickArg2) {
            ++*relShed;
            reqAborted = true;
            finishOp();
            return true;
        }
    }
    if (!deadlineArmed && rel->deadlinePs > 0) {
        deadlineArmed = true;
        const Tick dl = reqStart + rel->deadlinePs;
        if (dl <= now()) {
            // Queueing already ate the whole budget.
            ++*relDeadlineMiss;
            reqAborted = true;
            finishOp();
            return true;
        }
        const auto gen = runGeneration;
        const auto seq = reqSeq;
        queue().schedule(dl,
                         [this, gen, seq] {
                             if (gen != runGeneration ||
                                 seq != reqSeq)
                                 return;
                             if (!reqInProgress || reqAborted)
                                 return;
                             ++*relDeadlineMiss;
                             abortInFlight();
                         },
                         EventPriority::Core);
    }
    // Circuit breaker: fail fast on cross-host requests whose rack
    // routes are all down, with bounded backed-off retries.
    if (op.homeDimm >= 0 && hostView) {
        const unsigned target =
            cfg.hostOf(static_cast<DimmId>(op.homeDimm));
        if (target != myHost) {
            using Decision = serve_rel::CircuitBreaker::Decision;
            const bool up = hostView->routeUp(myHost, target);
            const Decision d = breaker.admit(target, up, now(),
                                             rel->breakerReopenPs);
            if (d == Decision::FastFail) {
                ++*relFastFails;
                if (attempts >= rel->maxRetries) {
                    ++*relFailed;
                    reqAborted = true;
                    finishOp();
                    return true;
                }
                ++attempts;
                ++*relRetries;
                state = State::Backoff;
                const auto gen = runGeneration;
                const auto seq = reqSeq;
                queue().scheduleIn(
                    backoff.delay(rel->backoffPs, attempts),
                    [this, gen, seq] {
                        if (gen != runGeneration || seq != reqSeq)
                            return;
                        if (state != State::Backoff)
                            return;
                        state = State::Ready;
                        advance(); // Re-enters this op.
                    },
                    EventPriority::Core);
                return false;
            }
            reqIsTrial = d == Decision::AdmitTrial;
            breakerTarget = static_cast<int>(target);
        }
    }
    finishOp();
    return true;
}

/** Abort the in-flight request (deadline miss): disown whatever it
 * has outstanding and unwind whichever wait state the core is in.
 * The caller bumps the relevant counter. */
void
NmpCore::abortInFlight()
{
    reqAborted = true;
    if (breakerTarget >= 0 && reqIsTrial) {
        breaker.onOutcome(static_cast<unsigned>(breakerTarget), false,
                          now(), rel->breakerReopenPs);
        reqIsTrial = false;
    }
    if (outstanding > 0) {
        stale += outstanding;
        outstanding = 0;
        remoteOutstanding = 0;
        outSide[0] = outSide[1] = 0;
        remoteSide[0] = remoteSide[1] = 0;
        ++issueEpoch;
    }
    switch (state) {
      case State::StallMshr:
      case State::Fence:
      case State::HedgeFence:
        exitStall();
        advance();
        break;
      case State::Backoff:
      case State::Waiting:
        state = State::Ready;
        advance();
        break;
      default:
        // Computing / FetchOp: the abort flag short-circuits the
        // request's remaining ops as each one comes up.
        break;
    }
}

/** The hedge timer fired mid-race: duplicate the batch to the
 * replica refs and let the first side to fully complete win. */
void
NmpCore::launchHedge()
{
    hedgeLaunched = true;
    ++*relHedges;
    // The hedge fanout gets a dedicated issue window past the MSHR
    // cap: queueing it behind its own stuck primary would defeat it.
    issueSide = 1;
    for (const MemRef &r : op.hedge) {
        issueRef(r);
        ++issueDebt;
    }
    issueSide = 0;
    if (outSide[1] == 0) {
        // The whole replica batch hit in the L1: instant win.
        settleHedge(1);
    }
}

/** One side of the hedge race fully completed: disown the loser's
 * in-flight requests and retire the op. */
void
NmpCore::settleHedge(unsigned winner)
{
    const unsigned loser = 1 - winner;
    if (hedgeLaunched && winner == 1)
        ++*relHedgeWins;
    if (outSide[loser] > 0) {
        stale += outSide[loser];
        outstanding -= outSide[loser];
        remoteOutstanding -= remoteSide[loser];
        outSide[loser] = 0;
        remoteSide[loser] = 0;
        ++issueEpoch;
    }
    exitStall();
    finishOp();
    advance();
}

void
NmpCore::advance()
{
    while (state == State::Ready) {
        if (issueDebt > 0) {
            // One issue cycle per reference of the finished batch.
            const Cycles cyc = issueDebt;
            issueDebt = 0;
            state = State::Computing;
            statComputePs +=
                static_cast<double>(clock().cyclesToTicks(cyc));
            if (tr)
                tr->complete(trk, nmCompute, now(),
                             clock().cyclesToTicks(cyc));
            const auto gen = runGeneration;
            scheduleCycles(cyc,
                           [this, gen] {
                               if (gen != runGeneration)
                                   return;
                               state = State::Ready;
                               advance();
                           },
                           EventPriority::Core);
            return;
        }

        if (!haveOp) {
            if (opSource) {
                // Sharded kernel: the program resumes on the
                // coordinator (deterministic cross-thread order) and
                // the op arrives one lookahead window later.
                state = State::FetchOp;
                const auto gen = runGeneration;
                opSource(prog.get(), [this, gen](Op o) {
                    if (gen != runGeneration)
                        return;
                    op = std::move(o);
                    haveOp = true;
                    refIdx = 0;
                    state = State::Ready;
                    advance();
                });
                return;
            }
            op = prog->next();
            haveOp = true;
            refIdx = 0;
        }

        switch (op.kind) {
          case Op::Kind::Compute: {
            if (reqAborted) {
                finishOp();
                break;
            }
            statInstructions += static_cast<double>(op.instructions);
            const auto cyc = std::max<Cycles>(
                1, static_cast<Cycles>(
                       static_cast<double>(op.instructions) /
                       cfg.dimm.computeIpc + 0.5));
            state = State::Computing;
            statComputePs +=
                static_cast<double>(clock().cyclesToTicks(cyc));
            if (tr)
                tr->complete(trk, nmCompute, now(),
                             clock().cyclesToTicks(cyc));
            const auto gen = runGeneration;
            scheduleCycles(cyc,
                           [this, gen] {
                               if (gen != runGeneration)
                                   return;
                               state = State::Ready;
                               finishOp();
                               advance();
                           },
                           EventPriority::Core);
            return;
          }

          case Op::Kind::Mem: {
            if (reqAborted) {
                finishOp();
                break;
            }
            while (refIdx < op.refs.size()) {
                // `stale` slots are still occupied by disowned
                // requests until their responses land.
                if (outstanding + stale >= cfg.dimm.maxOutstanding) {
                    enterStall(State::StallMshr);
                    return;
                }
                issueRef(op.refs[refIdx]);
                ++refIdx;
                ++issueDebt;
            }
            if (op.fenceAfter && outstanding > 0) {
                enterStall(State::Fence);
                return;
            }
            finishOp();
            break;
          }

          case Op::Kind::HedgedMem: {
            if (reqAborted) {
                finishOp();
                break;
            }
            // The hedge race resolves on per-side completion, so the
            // sides must start from a clean window.
            if (refIdx == 0 && outstanding > 0) {
                enterStall(State::Fence);
                return;
            }
            issueSide = 0;
            while (refIdx < op.refs.size()) {
                if (outstanding + stale >= cfg.dimm.maxOutstanding) {
                    enterStall(State::StallMshr);
                    return;
                }
                issueRef(op.refs[refIdx]);
                ++refIdx;
                ++issueDebt;
            }
            if (outstanding == 0) {
                // Every primary ref hit in the L1: nothing to race.
                finishOp();
                break;
            }
            if (!rel || rel->hedgeAfterPs == 0) {
                // No reliability engine (e.g. replaying a v3 trace
                // with the knobs off): a hedged batch is a fenced Mem.
                enterStall(State::Fence);
                return;
            }
            hedgeLaunched = false;
            enterStall(State::HedgeFence);
            const auto gen = runGeneration;
            const auto seq = reqSeq;
            queue().scheduleIn(
                rel->hedgeAfterPs,
                [this, gen, seq] {
                    if (gen != runGeneration || seq != reqSeq)
                        return;
                    if (state != State::HedgeFence || reqAborted ||
                        hedgeLaunched)
                        return;
                    launchHedge();
                },
                EventPriority::Core);
            return;
          }

          case Op::Kind::Barrier: {
            if (outstanding > 0) {
                enterStall(State::Fence);
                return;
            }
            if (!barrier)
                panic("%s: barrier op with no barrier endpoint",
                      name().c_str());
            // Software-assisted coherence: shared read-only lines
            // are invalidated at synchronization points so the next
            // phase re-fetches fresh data (Section III-E).
            if (l1)
                l1->invalidateShared();
            if (l2)
                l2->invalidateShared();
            state = State::Barrier;
            stallStart = now();
            const auto gen = runGeneration;
            barrier->arrive(tid_, dimm, [this, gen] {
                if (gen != runGeneration)
                    return;
                statBarrierPs +=
                    static_cast<double>(now() - stallStart);
                if (tr && now() > stallStart)
                    tr->complete(trk, nmBarrier, stallStart,
                                 now() - stallStart);
                state = State::Ready;
                finishOp();
                advance();
            });
            return;
          }

          case Op::Kind::Broadcast: {
            if (outstanding > 0) {
                enterStall(State::Fence);
                return;
            }
            if (!broadcaster)
                panic("%s: broadcast op with no broadcaster wired",
                      name().c_str());
            ++statBroadcasts;
            state = State::Broadcast;
            stallStart = now();
            const auto gen = runGeneration;
            broadcaster(op.bcastAddr, op.bcastBytes, [this, gen] {
                if (gen != runGeneration)
                    return;
                // Broadcast wait is remote-attributed stall time.
                statStallRemote +=
                    static_cast<double>(now() - stallStart);
                if (tr && now() > stallStart)
                    tr->complete(trk, nmBroadcast, stallStart,
                                 now() - stallStart);
                state = State::Ready;
                finishOp();
                advance();
            });
            return;
          }

          case Op::Kind::ReqStart: {
            if (rel) {
                if (relReqStart())
                    break;
                return;
            }
            // The previous request's ReqEnd drained the MSHRs, so the
            // latency clock starts clean. Open-loop arrivals are
            // relative to runStart; an arrival already in the past
            // starts immediately but still measures from the arrival,
            // so queueing delay lands in the latency histogram.
            const Tick arrival = op.tickArg == Op::reqNow
                                     ? now()
                                     : runStart + op.tickArg;
            reqStart = arrival;
            if (arrival > now()) {
                statReqWaitPs += static_cast<double>(arrival - now());
                state = State::Waiting;
                const auto gen = runGeneration;
                queue().schedule(arrival,
                                 [this, gen] {
                                     if (gen != runGeneration)
                                         return;
                                     state = State::Ready;
                                     finishOp();
                                     advance();
                                 },
                                 EventPriority::Core);
                return;
            }
            finishOp();
            break;
          }

          case Op::Kind::ReqEnd: {
            if (rel && reqAborted) {
                // The request was shed, failed fast or missed its
                // deadline: no latency sample, no drain (its leaked
                // MSHRs are in `stale` and free themselves as their
                // responses land).
                reqInProgress = false;
                reqAborted = false;
                reqIsTrial = false;
                breakerTarget = -1;
                finishOp();
                break;
            }
            if (outstanding > 0) {
                enterStall(State::Fence);
                return;
            }
            if (!reqHist)
                reqHist = &statGroup.histogram(
                    "reqLatencyPs", static_cast<double>(
                                        cfg.serve.latBucketPs),
                    cfg.serve.latBuckets);
            reqHist->sample(static_cast<double>(now() - reqStart));
            ++statRequests;
            if (rel) {
                if (breakerTarget >= 0 && reqIsTrial)
                    breaker.onOutcome(
                        static_cast<unsigned>(breakerTarget), true,
                        now(), rel->breakerReopenPs);
                reqIsTrial = false;
                breakerTarget = -1;
                reqInProgress = false;
            }
            finishOp();
            break;
          }

          case Op::Kind::Done: {
            state = State::Idle;
            prog.reset();
            haveOp = false;
            auto cb = std::move(onDone);
            onDone = nullptr;
            if (cb)
                cb();
            return;
          }
        }
    }
}

} // namespace dimmlink
