#include "dimm/nmp_core.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/log.hh"
#include "obs/tracer.hh"

namespace dimmlink {

NmpCore::NmpCore(EventQueue &eq, const std::string &name, DimmId dimm_,
                 CoreId core_, const SystemConfig &cfg_, LocalMc &mc_,
                 Cache *l1_, Cache *l2_, stats::Registry &reg)
    : Clocked(eq, name, cfg_.dimm.coreFreqMHz),
      dimm(dimm_),
      core(core_),
      cfg(cfg_),
      mc(mc_),
      l1(l1_),
      l2(l2_),
      statInstructions(reg.group(name).scalar("instructions")),
      statMemRefs(reg.group(name).scalar("memRefs")),
      statRemoteRefs(reg.group(name).scalar("remoteRefs")),
      statComputePs(reg.group(name).scalar("computePs")),
      statStallLocal(reg.group(name).scalar("stallLocalPs")),
      statStallRemote(reg.group(name).scalar("stallRemotePs")),
      statBarrierPs(reg.group(name).scalar("barrierPs")),
      statBroadcasts(reg.group(name).scalar("broadcasts")),
      statRequests(reg.group(name).scalar("requests")),
      statReqWaitPs(reg.group(name).scalar("reqWaitPs")),
      statGroup(reg.group(name))
{
    if (auto *t = eq.tracer(); t && t->enabled(obs::CatCore)) {
        tr = t;
        trk = t->track(name, obs::CatCore);
        nmCompute = t->intern("compute");
        nmStallLocal = t->intern("stallLocal");
        nmStallRemote = t->intern("stallRemote");
        nmBarrier = t->intern("barrier");
        nmBroadcast = t->intern("broadcast");
    }
}

void
NmpCore::run(ThreadId tid, std::unique_ptr<ThreadProgram> program,
             std::function<void()> on_done)
{
    if (state != State::Idle)
        panic("%s: run() while core is busy", name().c_str());
    ++runGeneration;
    prog = std::move(program);
    tid_ = tid;
    onDone = std::move(on_done);
    haveOp = false;
    refIdx = 0;
    issueDebt = 0;
    outstanding = 0;
    remoteOutstanding = 0;
    runStart = now();
    reqStart = now();
    state = State::Ready;
    // Start on the next clock edge.
    const auto gen = runGeneration;
    queue().schedule(clockEdge(),
                     [this, gen] {
                         if (gen == runGeneration)
                             advance();
                     },
                     EventPriority::Core);
}

void
NmpCore::cancel()
{
    ++runGeneration;
    state = State::Idle;
    prog.reset();
    onDone = nullptr;
    haveOp = false;
    outstanding = 0;
    remoteOutstanding = 0;
    issueDebt = 0;
}

void
NmpCore::finishOp()
{
    haveOp = false;
    refIdx = 0;
}

void
NmpCore::enterStall(State s)
{
    state = s;
    stallStart = now();
    stallRemote = remoteOutstanding > 0;
}

void
NmpCore::exitStall()
{
    const Tick dt = now() - stallStart;
    if (stallRemote)
        statStallRemote += static_cast<double>(dt);
    else
        statStallLocal += static_cast<double>(dt);
    if (tr && dt > 0)
        tr->complete(trk, stallRemote ? nmStallRemote : nmStallLocal,
                     stallStart, dt);
    state = State::Ready;
}

void
NmpCore::onResponse(bool was_remote)
{
    if (outstanding == 0)
        panic("%s: response with no outstanding request",
              name().c_str());
    --outstanding;
    if (was_remote) {
        if (remoteOutstanding == 0)
            panic("%s: remote response accounting underflow",
                  name().c_str());
        --remoteOutstanding;
    }

    if (state == State::StallMshr) {
        exitStall();
        advance();
    } else if (state == State::Fence && outstanding == 0) {
        exitStall();
        advance();
    }
}

void
NmpCore::issueRef(const MemRef &ref)
{
    ++statMemRefs;
    ++statInstructions;
    const DimmId home = homeOf ? homeOf(ref.addr) : dimm;
    const bool remote = home != dimm;
    if (remote)
        ++statRemoteRefs;
    if (probe)
        probe(tid_, home, ref.bytes);

    const auto gen = runGeneration;
    auto response = [this, gen, remote] {
        if (gen == runGeneration)
            onResponse(remote);
    };

    // Software-assisted coherence: shared read-write data bypasses the
    // NMP caches entirely (Section III-E).
    const bool cacheable = ref.cls != DataClass::SharedRW && l1;
    if (!cacheable) {
        ++outstanding;
        if (remote)
            ++remoteOutstanding;
        mc.access(ref.addr, ref.bytes, ref.isWrite,
                  std::move(response));
        return;
    }

    const unsigned line = l1->lineBytes();
    const Addr line_addr = roundDown(ref.addr, line);
    const bool shared_ro = ref.cls == DataClass::SharedRO;

    const Cache::Result r1 = l1->access(ref.addr, ref.isWrite,
                                        shared_ro);
    if (r1.hit)
        return; // Pipelined L1 hit.

    if (r1.writeback) {
        // Dirty victim drops into the shared L2 (or memory).
        if (l2) {
            const Cache::Result rwb = l2->access(r1.victimAddr, true);
            if (rwb.writeback)
                mc.postedWrite(rwb.victimAddr, line);
        } else {
            mc.postedWrite(r1.victimAddr, line);
        }
    }

    if (l2) {
        // Fill path: the L2 allocation is clean; dirtiness arrives
        // only through L1 writebacks.
        const Cache::Result r2 = l2->access(ref.addr, false,
                                            shared_ro);
        if (r2.hit) {
            ++outstanding;
            if (remote)
                ++remoteOutstanding;
            queue().scheduleIn(cfg.dimm.l2LatencyPs,
                               std::move(response),
                               EventPriority::Delivery);
            return;
        }
        if (r2.writeback)
            mc.postedWrite(r2.victimAddr, line);
    }

    // Miss to memory: fetch the whole line from its home DIMM.
    ++outstanding;
    if (remote)
        ++remoteOutstanding;
    mc.access(line_addr, line, /*is_write=*/false,
              std::move(response));
}

void
NmpCore::advance()
{
    while (state == State::Ready) {
        if (issueDebt > 0) {
            // One issue cycle per reference of the finished batch.
            const Cycles cyc = issueDebt;
            issueDebt = 0;
            state = State::Computing;
            statComputePs +=
                static_cast<double>(clock().cyclesToTicks(cyc));
            if (tr)
                tr->complete(trk, nmCompute, now(),
                             clock().cyclesToTicks(cyc));
            const auto gen = runGeneration;
            scheduleCycles(cyc,
                           [this, gen] {
                               if (gen != runGeneration)
                                   return;
                               state = State::Ready;
                               advance();
                           },
                           EventPriority::Core);
            return;
        }

        if (!haveOp) {
            if (opSource) {
                // Sharded kernel: the program resumes on the
                // coordinator (deterministic cross-thread order) and
                // the op arrives one lookahead window later.
                state = State::FetchOp;
                const auto gen = runGeneration;
                opSource(prog.get(), [this, gen](Op o) {
                    if (gen != runGeneration)
                        return;
                    op = std::move(o);
                    haveOp = true;
                    refIdx = 0;
                    state = State::Ready;
                    advance();
                });
                return;
            }
            op = prog->next();
            haveOp = true;
            refIdx = 0;
        }

        switch (op.kind) {
          case Op::Kind::Compute: {
            statInstructions += static_cast<double>(op.instructions);
            const auto cyc = std::max<Cycles>(
                1, static_cast<Cycles>(
                       static_cast<double>(op.instructions) /
                       cfg.dimm.computeIpc + 0.5));
            state = State::Computing;
            statComputePs +=
                static_cast<double>(clock().cyclesToTicks(cyc));
            if (tr)
                tr->complete(trk, nmCompute, now(),
                             clock().cyclesToTicks(cyc));
            const auto gen = runGeneration;
            scheduleCycles(cyc,
                           [this, gen] {
                               if (gen != runGeneration)
                                   return;
                               state = State::Ready;
                               finishOp();
                               advance();
                           },
                           EventPriority::Core);
            return;
          }

          case Op::Kind::Mem: {
            while (refIdx < op.refs.size()) {
                if (outstanding >= cfg.dimm.maxOutstanding) {
                    enterStall(State::StallMshr);
                    return;
                }
                issueRef(op.refs[refIdx]);
                ++refIdx;
                ++issueDebt;
            }
            if (op.fenceAfter && outstanding > 0) {
                enterStall(State::Fence);
                return;
            }
            finishOp();
            break;
          }

          case Op::Kind::Barrier: {
            if (outstanding > 0) {
                enterStall(State::Fence);
                return;
            }
            if (!barrier)
                panic("%s: barrier op with no barrier endpoint",
                      name().c_str());
            // Software-assisted coherence: shared read-only lines
            // are invalidated at synchronization points so the next
            // phase re-fetches fresh data (Section III-E).
            if (l1)
                l1->invalidateShared();
            if (l2)
                l2->invalidateShared();
            state = State::Barrier;
            stallStart = now();
            const auto gen = runGeneration;
            barrier->arrive(tid_, dimm, [this, gen] {
                if (gen != runGeneration)
                    return;
                statBarrierPs +=
                    static_cast<double>(now() - stallStart);
                if (tr && now() > stallStart)
                    tr->complete(trk, nmBarrier, stallStart,
                                 now() - stallStart);
                state = State::Ready;
                finishOp();
                advance();
            });
            return;
          }

          case Op::Kind::Broadcast: {
            if (outstanding > 0) {
                enterStall(State::Fence);
                return;
            }
            if (!broadcaster)
                panic("%s: broadcast op with no broadcaster wired",
                      name().c_str());
            ++statBroadcasts;
            state = State::Broadcast;
            stallStart = now();
            const auto gen = runGeneration;
            broadcaster(op.bcastAddr, op.bcastBytes, [this, gen] {
                if (gen != runGeneration)
                    return;
                // Broadcast wait is remote-attributed stall time.
                statStallRemote +=
                    static_cast<double>(now() - stallStart);
                if (tr && now() > stallStart)
                    tr->complete(trk, nmBroadcast, stallStart,
                                 now() - stallStart);
                state = State::Ready;
                finishOp();
                advance();
            });
            return;
          }

          case Op::Kind::ReqStart: {
            // The previous request's ReqEnd drained the MSHRs, so the
            // latency clock starts clean. Open-loop arrivals are
            // relative to runStart; an arrival already in the past
            // starts immediately but still measures from the arrival,
            // so queueing delay lands in the latency histogram.
            const Tick arrival = op.tickArg == Op::reqNow
                                     ? now()
                                     : runStart + op.tickArg;
            reqStart = arrival;
            if (arrival > now()) {
                statReqWaitPs += static_cast<double>(arrival - now());
                state = State::Waiting;
                const auto gen = runGeneration;
                queue().schedule(arrival,
                                 [this, gen] {
                                     if (gen != runGeneration)
                                         return;
                                     state = State::Ready;
                                     finishOp();
                                     advance();
                                 },
                                 EventPriority::Core);
                return;
            }
            finishOp();
            break;
          }

          case Op::Kind::ReqEnd: {
            if (outstanding > 0) {
                enterStall(State::Fence);
                return;
            }
            if (!reqHist)
                reqHist = &statGroup.histogram(
                    "reqLatencyPs", static_cast<double>(
                                        cfg.serve.latBucketPs),
                    cfg.serve.latBuckets);
            reqHist->sample(static_cast<double>(now() - reqStart));
            ++statRequests;
            finishOp();
            break;
          }

          case Op::Kind::Done: {
            state = State::Idle;
            prog.reset();
            haveOp = false;
            auto cb = std::move(onDone);
            onDone = nullptr;
            if (cb)
                cb();
            return;
          }
        }
    }
}

} // namespace dimmlink
