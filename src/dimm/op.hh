/**
 * @file
 * The operation stream a software thread presents to its core. The
 * methodology mirrors the paper's trace-driven simulation: workloads
 * are real algorithms over real data, but the timing model consumes
 * the Compute/Mem/Barrier/Broadcast stream they emit.
 */

#ifndef DIMMLINK_DIMM_OP_HH
#define DIMMLINK_DIMM_OP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dimmlink {

/**
 * Software-assisted coherence classes (Section III-E): thread-private
 * and shared read-only data are cacheable by NMP cores; shared
 * read-write data bypasses the NMP caches.
 */
enum class DataClass : std::uint8_t { Private, SharedRO, SharedRW };

/** One memory reference in an op's batch. */
struct MemRef
{
    Addr addr = 0;          ///< Global physical address.
    std::uint16_t bytes = 64;
    bool isWrite = false;
    DataClass cls = DataClass::Private;
};

/** One operation of a thread's stream. */
struct Op
{
    enum class Kind : std::uint8_t {
        Compute,   ///< Execute @ref instructions instructions.
        Mem,       ///< Issue @ref refs (overlapped up to the MSHRs).
        Barrier,   ///< Synchronize with all threads of the kernel.
        Broadcast, ///< Explicit DL broadcast of @ref bcastBytes.
        Done,      ///< Thread finished.
        ReqStart,  ///< Open a serving request (see @ref tickArg).
        ReqEnd,    ///< Drain and record the request's latency.
        HedgedMem, ///< Mem, but @ref hedge may duplicate it late.
    };

    /** ReqStart: arrival == "now" (closed-loop load generation). */
    static constexpr Tick reqNow = maxTick;

    Kind kind = Kind::Done;
    /** Compute: dynamic instruction count. */
    std::uint64_t instructions = 0;
    /** Mem: the batch of references. */
    std::vector<MemRef> refs;
    /** Mem: wait for every outstanding access before the next op. */
    bool fenceAfter = false;
    /** Broadcast: payload location and size. */
    Addr bcastAddr = 0;
    std::uint64_t bcastBytes = 0;
    /** ReqStart: the request's arrival tick, relative to the tick the
     * thread's run began (so traces replay on any system), or reqNow
     * for closed-loop mode. An open-loop core idles until the arrival
     * and measures latency from it -- queueing delay included -- while
     * a closed-loop core starts the clock when it picks the request
     * up. */
    Tick tickArg = 0;
    /** ReqStart (reliability layer): shed the request if it is still
     * waiting at run start + tickArg2 -- the arrival of the
     * serve.maxInflight'th later request on this thread. 0 = never
     * shed. */
    Tick tickArg2 = 0;
    /** ReqStart (reliability layer): home DIMM of the request's data,
     * the circuit breaker's fail-fast target. -1 = no route check. */
    std::int32_t homeDimm = -1;
    /** HedgedMem: the replica batch a late hedge duplicates to. */
    std::vector<MemRef> hedge;

    static Op
    compute(std::uint64_t instructions)
    {
        Op op;
        op.kind = Kind::Compute;
        op.instructions = instructions;
        return op;
    }

    static Op
    mem(std::vector<MemRef> refs, bool fence = false)
    {
        Op op;
        op.kind = Kind::Mem;
        op.refs = std::move(refs);
        op.fenceAfter = fence;
        return op;
    }

    static Op
    read(Addr addr, std::uint16_t bytes = 64,
         DataClass cls = DataClass::Private, bool fence = false)
    {
        return mem({MemRef{addr, bytes, false, cls}}, fence);
    }

    static Op
    write(Addr addr, std::uint16_t bytes = 64,
          DataClass cls = DataClass::Private, bool fence = false)
    {
        return mem({MemRef{addr, bytes, true, cls}}, fence);
    }

    static Op
    barrier()
    {
        Op op;
        op.kind = Kind::Barrier;
        return op;
    }

    static Op
    broadcast(Addr addr, std::uint64_t bytes)
    {
        Op op;
        op.kind = Kind::Broadcast;
        op.bcastAddr = addr;
        op.bcastBytes = bytes;
        return op;
    }

    static Op
    done()
    {
        return Op{};
    }

    /** Open-loop request: idle until @p arrival_rel (ticks after the
     * thread's run start), then measure end-to-end latency from it. */
    static Op
    reqStart(Tick arrival_rel)
    {
        Op op;
        op.kind = Kind::ReqStart;
        op.tickArg = arrival_rel;
        return op;
    }

    /** Closed-loop request: start the latency clock immediately. */
    static Op
    reqStartNow()
    {
        return reqStart(reqNow);
    }

    /** Open- or closed-loop request carrying the reliability layer's
     * per-request metadata (shed horizon and breaker target). */
    static Op
    reqStartServe(Tick arrival_rel, Tick shed_after,
                  std::int32_t home_dimm)
    {
        Op op = reqStart(arrival_rel);
        op.tickArg2 = shed_after;
        op.homeDimm = home_dimm;
        return op;
    }

    /** Mem batch with a replica batch the core may hedge to after
     * serve.hedgeAfterUs. Always fenced: the hedge race resolves on
     * first completion, so nothing may overlap past it. */
    static Op
    memHedged(std::vector<MemRef> refs, std::vector<MemRef> hedge_refs)
    {
        Op op;
        op.kind = Kind::HedgedMem;
        op.refs = std::move(refs);
        op.hedge = std::move(hedge_refs);
        op.fenceAfter = true;
        return op;
    }

    /** Drain outstanding accesses, then record now - request start
     * into the core's request-latency histogram. */
    static Op
    reqEnd()
    {
        Op op;
        op.kind = Kind::ReqEnd;
        return op;
    }
};

/**
 * A thread's program: a resumable generator of operations. next() is
 * called once the previous operation has fully retired.
 */
class ThreadProgram
{
  public:
    virtual ~ThreadProgram() = default;

    /** Produce the next operation (Kind::Done exactly once, last). */
    virtual Op next() = 0;
};

} // namespace dimmlink

#endif // DIMMLINK_DIMM_OP_HH
