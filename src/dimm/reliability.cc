#include "dimm/reliability.hh"

#include "common/config.hh"

namespace dimmlink {
namespace serve_rel {

namespace {
constexpr double psPerUs = 1e6;
} // namespace

Params
Params::from(const ServeConfig &serve)
{
    Params p;
    p.deadlinePs = static_cast<Tick>(serve.deadlineUs * psPerUs);
    p.hedgeAfterPs = static_cast<Tick>(serve.hedgeAfterUs * psPerUs);
    p.backoffPs = static_cast<Tick>(serve.backoffUs * psPerUs);
    // Once a route has tripped the breaker, probing again before a
    // few backoff windows have passed just burns retries; four is
    // long enough for LinkHealth's reprobe cycle to matter and short
    // enough to re-admit promptly after recovery.
    p.breakerReopenPs = 4 * p.backoffPs;
    p.maxRetries = serve.maxRetries;
    p.maxInflight = serve.maxInflight;
    return p;
}

CircuitBreaker::Entry &
CircuitBreaker::entry(unsigned host)
{
    if (host >= hosts.size())
        hosts.resize(host + 1);
    return hosts[host];
}

CircuitBreaker::Decision
CircuitBreaker::admit(unsigned host, bool route_up, Tick now,
                      Tick penalty_ps)
{
    Entry &e = entry(host);
    switch (e.state) {
      case State::Closed:
        if (route_up)
            return Decision::Admit;
        e.state = State::Open;
        e.reopenAt = now + penalty_ps;
        return Decision::FastFail;
      case State::Open:
        if (now >= e.reopenAt && route_up) {
            e.state = State::HalfOpen;
            e.trialInFlight = true;
            return Decision::AdmitTrial;
        }
        return Decision::FastFail;
      case State::HalfOpen:
        // One trial at a time; everyone else keeps failing fast
        // until its outcome arrives.
        if (e.trialInFlight)
            return Decision::FastFail;
        e.trialInFlight = true;
        return Decision::AdmitTrial;
    }
    return Decision::Admit; // Unreachable; placates -Werror.
}

void
CircuitBreaker::onOutcome(unsigned host, bool success, Tick now,
                          Tick penalty_ps)
{
    Entry &e = entry(host);
    if (e.state != State::HalfOpen)
        return;
    e.trialInFlight = false;
    if (success) {
        e.state = State::Closed;
        e.reopenAt = 0;
    } else {
        e.state = State::Open;
        e.reopenAt = now + penalty_ps;
    }
}

} // namespace serve_rel
} // namespace dimmlink
