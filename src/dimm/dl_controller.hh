/**
 * @file
 * The functional model of one DIMM's DL-Controller (Fig. 6, right):
 * the NW-Interface (packet generation/decoding with CRC), the Packet
 * Buffer the host reads during CPU-forwarding, the Polling Registers
 * the polling checker exposes, and the DLL retry machinery.
 *
 * The timing of packet transport lives in idc::DlFabric (which models
 * the routers, links, polling and forwarding); this class provides
 * the bit-exact functional path, exercised by the unit tests and the
 * prototype-latency bench, and backs the fabric's per-DIMM state.
 */

#ifndef DIMMLINK_DIMM_DL_CONTROLLER_HH
#define DIMMLINK_DIMM_DL_CONTROLLER_HH

#include <deque>
#include <functional>
#include <optional>

#include "common/stats.hh"
#include "proto/codec.hh"
#include "proto/dll.hh"
#include "sim/event_queue.hh"

namespace dimmlink {

class DlController
{
  public:
    DlController(EventQueue &eq, const std::string &name, DimmId self,
                 Tick retry_timeout_ps, unsigned max_retries,
                 stats::Registry &reg,
                 unsigned window = proto::RetrySender::defaultWindow,
                 proto::ExhaustFallback fallback =
                     proto::ExhaustFallback::Panic);

    DimmId id() const { return self; }

    /** Allocate a transaction TAG (6-bit, recycled). */
    std::uint8_t allocTag();

    /**
     * Packetize a remote request/response and hand the wire image to
     * @p transmit under DLL retry protection. @p transmit receives the
     * sequence-stamped packet plus its freshly encoded wire image —
     * fresh on every retry, so a retransmission never re-sends a
     * corrupted buffer. @p on_acked fires when the destination's ACK
     * returns; @p on_failed (optional) fires when the retry budget is
     * exhausted, instead of panicking.
     */
    void sendReliable(proto::Packet pkt,
                      std::function<void(const proto::Packet &,
                                         std::vector<std::uint8_t>)>
                          transmit,
                      std::function<void()> on_acked,
                      std::function<void()> on_failed = nullptr);

    /**
     * A wire image arrived from the bridge. Validates CRC, emits the
     * ACK/NACK through @p send_control, and hands packets that became
     * deliverable (in per-source sequence order) to @p deliver.
     * @param corrupted inject a bit flip before validation (tests).
     */
    void onWireArrive(const std::vector<std::uint8_t> &wire,
                      bool corrupted,
                      std::function<void(const proto::Packet &)>
                          send_control,
                      std::function<void(proto::Packet)> deliver,
                      std::function<void(proto::Packet)> stale = nullptr);

    /**
     * The peer retired sequence @p seq of @p src's stream after retry
     * exhaustion (the payload completed out-of-band, or was dropped on
     * purpose): advance the receive stream past the permanent gap so
     * later sequences do not wait on it forever. Held packets the skip
     * releases flow through @p deliver in order.
     */
    void skipReceive(std::uint8_t src, std::uint16_t seq,
                     std::function<void(proto::Packet)> deliver);

    /** Feed an arriving DllAck/DllNack to the retry state. */
    void onControlArrive(const proto::Packet &ctrl);

    /** Host-visible polling registers: pending forward requests. */
    unsigned pollingCount() const { return pollingRegs; }
    void raiseForward() { ++pollingRegs; }
    /** The host's polling checker read and claimed the requests. */
    unsigned
    pollClear()
    {
        const unsigned n = pollingRegs;
        pollingRegs = 0;
        return n;
    }

    /** Packet buffer the host reads/writes during forwarding. */
    void pushPacket(std::vector<std::uint8_t> wire);
    std::optional<std::vector<std::uint8_t>> popPacket();
    std::size_t packetBufferDepth() const { return packetBuf.size(); }

    std::size_t retryInFlight() const { return retry.inFlight(); }
    /** Sends waiting for the retry window to open. */
    std::size_t retryQueued() const { return retry.queued(); }
    /** Out-of-order packets held in the receive reorder buffer. */
    std::size_t receiverBuffered() const
    {
        return receiver.bufferedPackets();
    }

  private:
    EventQueue &eventq;
    std::string name_;
    DimmId self;
    unsigned pollingRegs = 0;
    std::deque<std::vector<std::uint8_t>> packetBuf;
    std::uint8_t nextTag = 0;

    proto::RetrySender retry;
    proto::RetryReceiver receiver;

    stats::Scalar &statPacketized;
    stats::Scalar &statDecoded;
};

} // namespace dimmlink

#endif // DIMMLINK_DIMM_DL_CONTROLLER_HH
