/**
 * @file
 * A set-associative write-back, write-allocate cache tag model with
 * LRU replacement. Used for the NMP cores' private L1s and shared L2
 * and for the host cores' L1/LLC. Latency and miss handling live in
 * the owner; this class only tracks hits, misses and dirty victims.
 */

#ifndef DIMMLINK_DIMM_CACHE_HH
#define DIMMLINK_DIMM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dimmlink {

class Cache
{
  public:
    /** Result of one access. */
    struct Result
    {
        bool hit = false;
        /** A dirty line was evicted and must be written back. */
        bool writeback = false;
        Addr victimAddr = 0;
    };

    Cache(std::string name, unsigned size_bytes, unsigned assoc,
          unsigned line_bytes, stats::Group &sg);

    /**
     * Look up @p addr; allocate on miss.
     * @param shared_ro tag the line as shared read-only data, which
     *        software-assisted coherence invalidates at barriers.
     */
    Result access(Addr addr, bool is_write, bool shared_ro = false);

    /** Look up without allocating or updating LRU. */
    bool probe(Addr addr) const;

    /** Invalidate everything, returning the count of dirty lines
     * (cache flush at kernel end, Section III-E). */
    unsigned flush();

    /** Invalidate only shared read-only lines (the software-assisted
     * coherence action at synchronization points). */
    unsigned invalidateShared();

    unsigned lineBytes() const { return line; }
    unsigned numSets() const { return sets; }
    unsigned associativity() const { return ways; }

    double hitRate() const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        bool sharedRo = false;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr addrOf(Addr tag, std::size_t set) const;

    std::string name_;
    unsigned line;
    unsigned sets;
    unsigned ways;
    unsigned lineShift;
    std::vector<Line> lines;
    std::uint64_t stamp = 0;

    stats::Scalar &statHits;
    stats::Scalar &statMisses;
    stats::Scalar &statWritebacks;
};

} // namespace dimmlink

#endif // DIMMLINK_DIMM_CACHE_HH
