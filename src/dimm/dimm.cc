#include "dimm/dimm.hh"

#include "common/log.hh"

namespace dimmlink {

Dimm::Dimm(EventQueue &eq, DimmId id, const SystemConfig &cfg,
           const dram::Timing &timing,
           const dram::GlobalAddressMap &gmap, stats::Registry &reg)
    : id_(id)
{
    const std::string base = "dimm" + std::to_string(id);

    mc = std::make_unique<LocalMc>(eq, base + ".mc", id, cfg, timing,
                                   gmap, reg);
    dlc = std::make_unique<DlController>(
        eq, base + ".dlc", id, cfg.link.retryTimeoutPs,
        cfg.link.maxRetries, reg, cfg.link.retryWindow);

    l2 = std::make_unique<Cache>(base + ".l2", cfg.dimm.l2Bytes,
                                 cfg.dimm.l2Assoc, cfg.dimm.lineBytes,
                                 reg.group(base + ".l2"));

    for (unsigned c = 0; c < cfg.dimm.numCores; ++c) {
        const std::string cname =
            base + ".core" + std::to_string(c);
        l1s.push_back(std::make_unique<Cache>(
            cname + ".l1", cfg.dimm.l1Bytes, cfg.dimm.l1Assoc,
            cfg.dimm.lineBytes, reg.group(cname + ".l1")));
        cores.push_back(std::make_unique<NmpCore>(
            eq, cname, id, static_cast<CoreId>(c), cfg, *mc,
            l1s.back().get(), l2.get(), reg));
    }
}

void
Dimm::connect(idc::Fabric *fabric, BarrierEndpoint *barrier,
              const dram::GlobalAddressMap *gmap)
{
    mc->setFabric(fabric);
    for (auto &core : cores) {
        core->setBarrier(barrier);
        core->setHomeLookup(
            [gmap](Addr a) { return gmap->dimmOf(a); });
        core->setBroadcaster(
            [this, fabric, gmap](Addr addr, std::uint64_t bytes,
                                 std::function<void()> done) {
                idc::Transaction t;
                t.type = idc::Transaction::Type::Broadcast;
                t.src = id_;
                t.dst = invalidDimm;
                t.addr = gmap->localOf(addr);
                t.bytes = static_cast<std::uint32_t>(bytes);
                t.onComplete = std::move(done);
                fabric->submit(std::move(t));
            });
    }
}

void
Dimm::flushCaches()
{
    for (auto &l1 : l1s) {
        const unsigned dirty = l1->flush();
        // Dirty L1 lines spill into the L2's stats-free flush; the
        // final DRAM writeback traffic is modest and posted.
        (void)dirty;
    }
    l2->flush();
}

bool
Dimm::quiescent() const
{
    for (const auto &core : cores)
        if (core->busy())
            return false;
    return mc->idle();
}

} // namespace dimmlink
