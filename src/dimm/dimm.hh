/**
 * @file
 * One NMP DIMM with the centralized buffer-chip architecture: NMP
 * cores with private L1s and a shared L2, the Local MC with
 * rank-parallel DRAM controllers, and the DL-Controller.
 */

#ifndef DIMMLINK_DIMM_DIMM_HH
#define DIMMLINK_DIMM_DIMM_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "dimm/cache.hh"
#include "dimm/dl_controller.hh"
#include "dimm/local_mc.hh"
#include "dimm/nmp_core.hh"

namespace dimmlink {

class Dimm
{
  public:
    Dimm(EventQueue &eq, DimmId id, const SystemConfig &cfg,
         const dram::Timing &timing,
         const dram::GlobalAddressMap &gmap, stats::Registry &reg);

    DimmId id() const { return id_; }

    NmpCore &core(CoreId c) { return *cores[c]; }
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores.size());
    }
    LocalMc &localMc() { return *mc; }
    DlController &dlController() { return *dlc; }
    Cache &l2Cache() { return *l2; }

    /** Wire every core + the MC to the IDC fabric and sync/broadcast
     * endpoints; called by the System during assembly. */
    void connect(idc::Fabric *fabric, BarrierEndpoint *barrier,
                 const dram::GlobalAddressMap *gmap);

    /** Kernel end (Section III-E): NMP caches flush so the host can
     * fetch results from DRAM. */
    void flushCaches();

    /** True when no core is running and the MC is drained. */
    bool quiescent() const;

  private:
    DimmId id_;
    std::unique_ptr<LocalMc> mc;
    std::unique_ptr<DlController> dlc;
    std::vector<std::unique_ptr<Cache>> l1s;
    std::unique_ptr<Cache> l2;
    std::vector<std::unique_ptr<NmpCore>> cores;
};

} // namespace dimmlink

#endif // DIMMLINK_DIMM_DIMM_HH
