#include "dimm/dl_controller.hh"

#include "common/log.hh"

namespace dimmlink {

DlController::DlController(EventQueue &eq, const std::string &name,
                           DimmId self_, Tick retry_timeout_ps,
                           unsigned max_retries, stats::Registry &reg,
                           unsigned window,
                           proto::ExhaustFallback fallback)
    : eventq(eq),
      name_(name),
      self(self_),
      retry(eq, retry_timeout_ps, max_retries, reg.group(name), window,
            fallback),
      receiver(reg.group(name), window),
      statPacketized(reg.group(name).scalar("packetized")),
      statDecoded(reg.group(name).scalar("decoded"))
{
}

std::uint8_t
DlController::allocTag()
{
    const std::uint8_t tag = nextTag;
    nextTag = static_cast<std::uint8_t>((nextTag + 1) & 0x3f);
    return tag;
}

void
DlController::sendReliable(
    proto::Packet pkt,
    std::function<void(const proto::Packet &,
                       std::vector<std::uint8_t>)> transmit,
    std::function<void()> on_acked, std::function<void()> on_failed)
{
    ++statPacketized;
    retry.send(std::move(pkt),
               [tx = std::move(transmit)](const proto::Packet &p) {
                   tx(p, proto::encode(p));
               },
               std::move(on_acked), std::move(on_failed));
}

void
DlController::onWireArrive(
    const std::vector<std::uint8_t> &wire, bool corrupted,
    std::function<void(const proto::Packet &)> send_control,
    std::function<void(proto::Packet)> deliver,
    std::function<void(proto::Packet)> stale)
{
    std::vector<proto::Packet> ready;
    std::vector<proto::Packet> behind;
    std::optional<proto::Packet> ctrl;
    receiver.onArrive(wire, corrupted, ready, ctrl,
                      stale ? &behind : nullptr);
    if (ctrl && send_control)
        send_control(*ctrl);
    for (auto &pkt : ready) {
        ++statDecoded;
        if (deliver)
            deliver(std::move(pkt));
    }
    for (auto &pkt : behind)
        stale(std::move(pkt));
}

void
DlController::skipReceive(std::uint8_t src, std::uint16_t seq,
                          std::function<void(proto::Packet)> deliver)
{
    std::vector<proto::Packet> ready;
    receiver.skipTo(src, seq, ready);
    for (auto &pkt : ready) {
        ++statDecoded;
        if (deliver)
            deliver(std::move(pkt));
    }
}

void
DlController::onControlArrive(const proto::Packet &ctrl)
{
    retry.onControl(ctrl);
}

void
DlController::pushPacket(std::vector<std::uint8_t> wire)
{
    packetBuf.push_back(std::move(wire));
}

std::optional<std::vector<std::uint8_t>>
DlController::popPacket()
{
    if (packetBuf.empty())
        return std::nullopt;
    auto wire = std::move(packetBuf.front());
    packetBuf.pop_front();
    return wire;
}

} // namespace dimmlink
