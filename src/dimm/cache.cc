#include "dimm/cache.hh"

#include "common/bitfield.hh"
#include "common/log.hh"

namespace dimmlink {

Cache::Cache(std::string name, unsigned size_bytes, unsigned assoc,
             unsigned line_bytes, stats::Group &sg)
    : name_(std::move(name)),
      line(line_bytes),
      ways(assoc),
      statHits(sg.scalar("hits")),
      statMisses(sg.scalar("misses")),
      statWritebacks(sg.scalar("writebacks"))
{
    if (!isPow2(line_bytes))
        fatal("cache %s: line size must be a power of two",
              name_.c_str());
    if (size_bytes % (line_bytes * assoc) != 0)
        fatal("cache %s: size %u not divisible by way size",
              name_.c_str(), size_bytes);
    sets = size_bytes / (line_bytes * assoc);
    if (!isPow2(sets))
        fatal("cache %s: set count %u must be a power of two",
              name_.c_str(), sets);
    lineShift = floorLog2(line_bytes);
    lines.assign(static_cast<std::size_t>(sets) * ways, Line{});
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return static_cast<std::size_t>((addr >> lineShift) & (sets - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift >> floorLog2(sets);
}

Addr
Cache::addrOf(Addr tag, std::size_t set) const
{
    return ((tag << floorLog2(sets)) |
            static_cast<Addr>(set)) << lineShift;
}

Cache::Result
Cache::access(Addr addr, bool is_write, bool shared_ro)
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines[set * ways];

    Result r;
    for (unsigned w = 0; w < ways; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lruStamp = ++stamp;
            l.dirty = l.dirty || is_write;
            l.sharedRo = l.sharedRo && shared_ro;
            ++statHits;
            r.hit = true;
            return r;
        }
    }

    // Miss: victimize an invalid way if one exists, else the LRU way.
    Line *victim = nullptr;
    for (unsigned w = 0; w < ways; ++w) {
        Line &l = base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.lruStamp < victim->lruStamp)
            victim = &l;
    }

    ++statMisses;
    if (victim->valid && victim->dirty) {
        r.writeback = true;
        r.victimAddr = addrOf(victim->tag, set);
        ++statWritebacks;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->sharedRo = shared_ro;
    victim->lruStamp = ++stamp;
    return r;
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines[set * ways];
    for (unsigned w = 0; w < ways; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

unsigned
Cache::flush()
{
    unsigned dirty = 0;
    for (auto &l : lines) {
        if (l.valid && l.dirty)
            ++dirty;
        l.valid = false;
        l.dirty = false;
        l.sharedRo = false;
    }
    return dirty;
}

unsigned
Cache::invalidateShared()
{
    unsigned dropped = 0;
    for (auto &l : lines) {
        if (l.valid && l.sharedRo) {
            l.valid = false;
            l.dirty = false;
            l.sharedRo = false;
            ++dropped;
        }
    }
    return dropped;
}

double
Cache::hitRate() const
{
    const double total = statHits.value() + statMisses.value();
    return total > 0 ? statHits.value() / total : 0.0;
}

} // namespace dimmlink
