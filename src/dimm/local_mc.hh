/**
 * @file
 * The Local Memory Controller of Fig. 6: accepts NMP-core requests
 * into a transaction buffer, decodes the target DIMM id, arbitrates
 * between the Local DDR Interface (rank-parallel DRAM controllers)
 * and the DL-Interface (the IDC fabric), and reorders completions
 * back to the cores via callbacks.
 */

#ifndef DIMMLINK_DIMM_LOCAL_MC_HH
#define DIMMLINK_DIMM_LOCAL_MC_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "dram/address_map.hh"
#include "dram/dram_controller.hh"
#include "idc/fabric.hh"
#include "sim/event_callback.hh"
#include "sim/event_queue.hh"

namespace dimmlink {

class LocalMc
{
  public:
    LocalMc(EventQueue &eq, const std::string &name, DimmId self,
            const SystemConfig &cfg, const dram::Timing &timing,
            const dram::GlobalAddressMap &gmap, stats::Registry &reg);

    /** Wire in the IDC fabric (DL-Interface). */
    void setFabric(idc::Fabric *f) { fabric = f; }

    /**
     * Core-side access path: global address, any length. Splits into
     * cache lines, routes local lines to the rank controllers and
     * remote spans to the fabric; @p done fires when all complete.
     */
    void access(Addr global, std::uint32_t bytes, bool is_write,
                std::function<void()> done);

    /** True when @p global maps to a different DIMM. */
    bool isRemote(Addr global) const
    {
        return gmap.dimmOf(global) != self;
    }

    /**
     * Fabric-side path: a remote DIMM's request arrived here and
     * needs @p bytes of local DRAM access at DIMM-local @p local.
     */
    void remoteAccess(Addr local, std::uint32_t bytes, bool is_write,
                      std::function<void()> done);

    /** Posted write (cache victim writeback): no completion needed. */
    void postedWrite(Addr global, std::uint32_t bytes);

    DimmId id() const { return self; }
    bool idle() const;

    /** Stats accessors used by the metric collectors. */
    double localBytes() const { return statLocalBytes.value(); }
    double remoteBytes() const { return statRemoteBytes.value(); }

  private:
    struct PendingLine
    {
        Addr local;
        bool isWrite;
        EventCallback done; ///< SBO; matches DramRequest::done.
    };

    /** Split a DIMM-local span into line accesses on the rank
     * controllers; @p done fires when the last line completes. */
    void dramAccess(Addr local, std::uint32_t bytes, bool is_write,
                    std::function<void()> done);

    void enqueueLine(Addr line_addr, bool is_write,
                     EventCallback done);
    void drainPending();

    unsigned rankOf(Addr local) const;
    Addr ctrlAddr(Addr local) const;

    EventQueue &eventq;
    DimmId self;
    const SystemConfig &cfg;
    const dram::GlobalAddressMap &gmap;
    unsigned lineBytes;
    idc::Fabric *fabric = nullptr;

    /** One single-rank controller per physical rank: the NMP cores
     * exploit rank-level parallelism (Table V). */
    std::vector<std::unique_ptr<dram::DramController>> rankCtrl;

    /** The transaction buffer (Fig. 6, component 1). */
    std::deque<PendingLine> pending;

    stats::Scalar &statLocalReads;
    stats::Scalar &statLocalWrites;
    stats::Scalar &statRemoteReads;
    stats::Scalar &statRemoteWrites;
    stats::Scalar &statLocalBytes;
    stats::Scalar &statRemoteBytes;
};

} // namespace dimmlink

#endif // DIMMLINK_DIMM_LOCAL_MC_HH
