file(REMOVE_RECURSE
  "libdimmlink.a"
)
