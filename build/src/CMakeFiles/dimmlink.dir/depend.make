# Empty dependencies file for dimmlink.
# This may be replaced when dependencies are built.
