
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cc" "src/CMakeFiles/dimmlink.dir/common/config.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/common/config.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/dimmlink.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/dimmlink.dir/common/log.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/common/log.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/dimmlink.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/common/stats.cc.o.d"
  "/root/repo/src/common/stats_json.cc" "src/CMakeFiles/dimmlink.dir/common/stats_json.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/common/stats_json.cc.o.d"
  "/root/repo/src/dimm/cache.cc" "src/CMakeFiles/dimmlink.dir/dimm/cache.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/dimm/cache.cc.o.d"
  "/root/repo/src/dimm/dimm.cc" "src/CMakeFiles/dimmlink.dir/dimm/dimm.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/dimm/dimm.cc.o.d"
  "/root/repo/src/dimm/dl_controller.cc" "src/CMakeFiles/dimmlink.dir/dimm/dl_controller.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/dimm/dl_controller.cc.o.d"
  "/root/repo/src/dimm/local_mc.cc" "src/CMakeFiles/dimmlink.dir/dimm/local_mc.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/dimm/local_mc.cc.o.d"
  "/root/repo/src/dimm/nmp_core.cc" "src/CMakeFiles/dimmlink.dir/dimm/nmp_core.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/dimm/nmp_core.cc.o.d"
  "/root/repo/src/dram/address_map.cc" "src/CMakeFiles/dimmlink.dir/dram/address_map.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/dram/address_map.cc.o.d"
  "/root/repo/src/dram/bank.cc" "src/CMakeFiles/dimmlink.dir/dram/bank.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/dram/bank.cc.o.d"
  "/root/repo/src/dram/dram_controller.cc" "src/CMakeFiles/dimmlink.dir/dram/dram_controller.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/dram/dram_controller.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/CMakeFiles/dimmlink.dir/dram/timing.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/dram/timing.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/dimmlink.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/host/channel.cc" "src/CMakeFiles/dimmlink.dir/host/channel.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/host/channel.cc.o.d"
  "/root/repo/src/host/forwarder.cc" "src/CMakeFiles/dimmlink.dir/host/forwarder.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/host/forwarder.cc.o.d"
  "/root/repo/src/host/polling.cc" "src/CMakeFiles/dimmlink.dir/host/polling.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/host/polling.cc.o.d"
  "/root/repo/src/idc/abc_fabric.cc" "src/CMakeFiles/dimmlink.dir/idc/abc_fabric.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/idc/abc_fabric.cc.o.d"
  "/root/repo/src/idc/aim_fabric.cc" "src/CMakeFiles/dimmlink.dir/idc/aim_fabric.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/idc/aim_fabric.cc.o.d"
  "/root/repo/src/idc/dl_fabric.cc" "src/CMakeFiles/dimmlink.dir/idc/dl_fabric.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/idc/dl_fabric.cc.o.d"
  "/root/repo/src/idc/fabric.cc" "src/CMakeFiles/dimmlink.dir/idc/fabric.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/idc/fabric.cc.o.d"
  "/root/repo/src/idc/mcn_fabric.cc" "src/CMakeFiles/dimmlink.dir/idc/mcn_fabric.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/idc/mcn_fabric.cc.o.d"
  "/root/repo/src/mapping/mcmf.cc" "src/CMakeFiles/dimmlink.dir/mapping/mcmf.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/mapping/mcmf.cc.o.d"
  "/root/repo/src/mapping/placement.cc" "src/CMakeFiles/dimmlink.dir/mapping/placement.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/mapping/placement.cc.o.d"
  "/root/repo/src/mapping/profiler.cc" "src/CMakeFiles/dimmlink.dir/mapping/profiler.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/mapping/profiler.cc.o.d"
  "/root/repo/src/noc/link.cc" "src/CMakeFiles/dimmlink.dir/noc/link.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/noc/link.cc.o.d"
  "/root/repo/src/noc/network.cc" "src/CMakeFiles/dimmlink.dir/noc/network.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/noc/network.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/CMakeFiles/dimmlink.dir/noc/router.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/noc/router.cc.o.d"
  "/root/repo/src/noc/topology.cc" "src/CMakeFiles/dimmlink.dir/noc/topology.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/noc/topology.cc.o.d"
  "/root/repo/src/proto/codec.cc" "src/CMakeFiles/dimmlink.dir/proto/codec.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/proto/codec.cc.o.d"
  "/root/repo/src/proto/dll.cc" "src/CMakeFiles/dimmlink.dir/proto/dll.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/proto/dll.cc.o.d"
  "/root/repo/src/proto/packet.cc" "src/CMakeFiles/dimmlink.dir/proto/packet.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/proto/packet.cc.o.d"
  "/root/repo/src/sim/clocked.cc" "src/CMakeFiles/dimmlink.dir/sim/clocked.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/sim/clocked.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/dimmlink.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sync/lock_manager.cc" "src/CMakeFiles/dimmlink.dir/sync/lock_manager.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/sync/lock_manager.cc.o.d"
  "/root/repo/src/sync/sync_manager.cc" "src/CMakeFiles/dimmlink.dir/sync/sync_manager.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/sync/sync_manager.cc.o.d"
  "/root/repo/src/system/host_runner.cc" "src/CMakeFiles/dimmlink.dir/system/host_runner.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/system/host_runner.cc.o.d"
  "/root/repo/src/system/runner.cc" "src/CMakeFiles/dimmlink.dir/system/runner.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/system/runner.cc.o.d"
  "/root/repo/src/system/system.cc" "src/CMakeFiles/dimmlink.dir/system/system.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/system/system.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/dimmlink.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/trace/trace.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/CMakeFiles/dimmlink.dir/workloads/bfs.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/bfs.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/CMakeFiles/dimmlink.dir/workloads/graph.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/graph.cc.o.d"
  "/root/repo/src/workloads/gups.cc" "src/CMakeFiles/dimmlink.dir/workloads/gups.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/gups.cc.o.d"
  "/root/repo/src/workloads/hotspot.cc" "src/CMakeFiles/dimmlink.dir/workloads/hotspot.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/hotspot.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/CMakeFiles/dimmlink.dir/workloads/kmeans.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/kmeans.cc.o.d"
  "/root/repo/src/workloads/nw.cc" "src/CMakeFiles/dimmlink.dir/workloads/nw.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/nw.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/CMakeFiles/dimmlink.dir/workloads/pagerank.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/pagerank.cc.o.d"
  "/root/repo/src/workloads/spmv.cc" "src/CMakeFiles/dimmlink.dir/workloads/spmv.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/spmv.cc.o.d"
  "/root/repo/src/workloads/sssp.cc" "src/CMakeFiles/dimmlink.dir/workloads/sssp.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/sssp.cc.o.d"
  "/root/repo/src/workloads/stream.cc" "src/CMakeFiles/dimmlink.dir/workloads/stream.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/stream.cc.o.d"
  "/root/repo/src/workloads/syncbench.cc" "src/CMakeFiles/dimmlink.dir/workloads/syncbench.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/syncbench.cc.o.d"
  "/root/repo/src/workloads/tspow.cc" "src/CMakeFiles/dimmlink.dir/workloads/tspow.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/tspow.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/dimmlink.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/dimmlink.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
