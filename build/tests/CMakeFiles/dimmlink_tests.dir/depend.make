# Empty dependencies file for dimmlink_tests.
# This may be replaced when dependencies are built.
