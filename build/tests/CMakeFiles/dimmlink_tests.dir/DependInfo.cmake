
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/cache_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/cache_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/dimm_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/dimm_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/dimm_test.cc.o.d"
  "/root/repo/tests/dram_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/dram_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/dram_test.cc.o.d"
  "/root/repo/tests/energy_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/energy_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/energy_test.cc.o.d"
  "/root/repo/tests/event_queue_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/event_queue_test.cc.o.d"
  "/root/repo/tests/host_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/host_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/host_test.cc.o.d"
  "/root/repo/tests/idc_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/idc_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/idc_test.cc.o.d"
  "/root/repo/tests/lock_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/lock_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/lock_test.cc.o.d"
  "/root/repo/tests/mapping_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/mapping_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/mapping_test.cc.o.d"
  "/root/repo/tests/noc_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/noc_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/noc_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/proto_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/proto_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/proto_test.cc.o.d"
  "/root/repo/tests/routing_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/routing_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/routing_test.cc.o.d"
  "/root/repo/tests/sync_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/sync_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/sync_test.cc.o.d"
  "/root/repo/tests/system_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/system_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/system_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/dimmlink_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/dimmlink_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dimmlink.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
