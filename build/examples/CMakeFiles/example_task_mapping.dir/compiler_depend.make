# Empty compiler generated dependencies file for example_task_mapping.
# This may be replaced when dependencies are built.
