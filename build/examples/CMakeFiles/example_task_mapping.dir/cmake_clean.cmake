file(REMOVE_RECURSE
  "CMakeFiles/example_task_mapping.dir/task_mapping.cpp.o"
  "CMakeFiles/example_task_mapping.dir/task_mapping.cpp.o.d"
  "example_task_mapping"
  "example_task_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_task_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
