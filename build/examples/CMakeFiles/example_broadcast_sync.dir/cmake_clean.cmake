file(REMOVE_RECURSE
  "CMakeFiles/example_broadcast_sync.dir/broadcast_sync.cpp.o"
  "CMakeFiles/example_broadcast_sync.dir/broadcast_sync.cpp.o.d"
  "example_broadcast_sync"
  "example_broadcast_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_broadcast_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
