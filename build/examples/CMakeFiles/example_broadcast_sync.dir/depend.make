# Empty dependencies file for example_broadcast_sync.
# This may be replaced when dependencies are built.
