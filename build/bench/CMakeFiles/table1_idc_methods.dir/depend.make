# Empty dependencies file for table1_idc_methods.
# This may be replaced when dependencies are built.
