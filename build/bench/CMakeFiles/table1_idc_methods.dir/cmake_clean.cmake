file(REMOVE_RECURSE
  "CMakeFiles/table1_idc_methods.dir/table1_idc_methods.cc.o"
  "CMakeFiles/table1_idc_methods.dir/table1_idc_methods.cc.o.d"
  "table1_idc_methods"
  "table1_idc_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_idc_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
