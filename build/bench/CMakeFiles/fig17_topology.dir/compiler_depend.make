# Empty compiler generated dependencies file for fig17_topology.
# This may be replaced when dependencies are built.
