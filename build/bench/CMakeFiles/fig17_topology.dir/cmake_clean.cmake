file(REMOVE_RECURSE
  "CMakeFiles/fig17_topology.dir/fig17_topology.cc.o"
  "CMakeFiles/fig17_topology.dir/fig17_topology.cc.o.d"
  "fig17_topology"
  "fig17_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
