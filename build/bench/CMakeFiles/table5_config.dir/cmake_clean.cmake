file(REMOVE_RECURSE
  "CMakeFiles/table5_config.dir/table5_config.cc.o"
  "CMakeFiles/table5_config.dir/table5_config.cc.o.d"
  "table5_config"
  "table5_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
