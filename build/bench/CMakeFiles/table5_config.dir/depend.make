# Empty dependencies file for table5_config.
# This may be replaced when dependencies are built.
