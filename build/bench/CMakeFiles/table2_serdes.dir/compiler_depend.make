# Empty compiler generated dependencies file for table2_serdes.
# This may be replaced when dependencies are built.
