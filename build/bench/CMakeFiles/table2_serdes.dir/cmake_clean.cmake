file(REMOVE_RECURSE
  "CMakeFiles/table2_serdes.dir/table2_serdes.cc.o"
  "CMakeFiles/table2_serdes.dir/table2_serdes.cc.o.d"
  "table2_serdes"
  "table2_serdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_serdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
