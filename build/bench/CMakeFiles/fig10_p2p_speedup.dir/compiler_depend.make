# Empty compiler generated dependencies file for fig10_p2p_speedup.
# This may be replaced when dependencies are built.
