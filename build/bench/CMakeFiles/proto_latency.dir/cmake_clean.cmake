file(REMOVE_RECURSE
  "CMakeFiles/proto_latency.dir/proto_latency.cc.o"
  "CMakeFiles/proto_latency.dir/proto_latency.cc.o.d"
  "proto_latency"
  "proto_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
