# Empty dependencies file for proto_latency.
# This may be replaced when dependencies are built.
