# Empty compiler generated dependencies file for fig12_broadcast.
# This may be replaced when dependencies are built.
