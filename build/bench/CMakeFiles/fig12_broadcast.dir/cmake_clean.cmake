file(REMOVE_RECURSE
  "CMakeFiles/fig12_broadcast.dir/fig12_broadcast.cc.o"
  "CMakeFiles/fig12_broadcast.dir/fig12_broadcast.cc.o.d"
  "fig12_broadcast"
  "fig12_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
