# Empty dependencies file for fig15_polling.
# This may be replaced when dependencies are built.
