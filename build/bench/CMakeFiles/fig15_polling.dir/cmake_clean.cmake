file(REMOVE_RECURSE
  "CMakeFiles/fig15_polling.dir/fig15_polling.cc.o"
  "CMakeFiles/fig15_polling.dir/fig15_polling.cc.o.d"
  "fig15_polling"
  "fig15_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
