file(REMOVE_RECURSE
  "CMakeFiles/fig14_sync.dir/fig14_sync.cc.o"
  "CMakeFiles/fig14_sync.dir/fig14_sync.cc.o.d"
  "fig14_sync"
  "fig14_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
