# Empty compiler generated dependencies file for fig14_sync.
# This may be replaced when dependencies are built.
