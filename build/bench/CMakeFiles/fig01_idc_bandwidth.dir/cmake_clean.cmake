file(REMOVE_RECURSE
  "CMakeFiles/fig01_idc_bandwidth.dir/fig01_idc_bandwidth.cc.o"
  "CMakeFiles/fig01_idc_bandwidth.dir/fig01_idc_bandwidth.cc.o.d"
  "fig01_idc_bandwidth"
  "fig01_idc_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_idc_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
