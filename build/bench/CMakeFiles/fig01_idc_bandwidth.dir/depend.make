# Empty dependencies file for fig01_idc_bandwidth.
# This may be replaced when dependencies are built.
