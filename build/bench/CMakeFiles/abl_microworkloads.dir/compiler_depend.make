# Empty compiler generated dependencies file for abl_microworkloads.
# This may be replaced when dependencies are built.
