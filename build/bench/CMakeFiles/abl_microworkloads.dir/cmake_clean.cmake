file(REMOVE_RECURSE
  "CMakeFiles/abl_microworkloads.dir/abl_microworkloads.cc.o"
  "CMakeFiles/abl_microworkloads.dir/abl_microworkloads.cc.o.d"
  "abl_microworkloads"
  "abl_microworkloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_microworkloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
