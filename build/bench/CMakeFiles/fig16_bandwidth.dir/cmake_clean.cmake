file(REMOVE_RECURSE
  "CMakeFiles/fig16_bandwidth.dir/fig16_bandwidth.cc.o"
  "CMakeFiles/fig16_bandwidth.dir/fig16_bandwidth.cc.o.d"
  "fig16_bandwidth"
  "fig16_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
