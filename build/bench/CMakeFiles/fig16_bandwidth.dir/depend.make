# Empty dependencies file for fig16_bandwidth.
# This may be replaced when dependencies are built.
